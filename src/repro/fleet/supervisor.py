"""In-run fleet supervision: reschedule, hedge, quarantine.

Before this module, a fleet run *detected* worker failure (the shard
journal records it, ``fleet-status`` renders it) but could only act on
it across runs: exit 3, human re-runs with ``--resume``. Production
corpora at paper scale (7.7M executions) cannot assume a fault-free
multi-hour run, so the :class:`FleetSupervisor` closes the detect → act
loop *inside* the run:

* **Reschedule** — a worker that crashes (raises, is killed, or dies
  without a result) or whose heartbeat goes silent beyond
  ``stall_after`` seconds gets its shard re-run on a fresh worker,
  with attempt provenance (``attempt`` / ``rescheduled_from`` /
  ``failure_kind``) journaled. Pipelines derive their rngs from
  ``(seed, global index)`` only, so a rescheduled shard produces rows
  byte-identical to a first-try shard — the merged store of a
  recovered run equals the fault-free run exactly.
* **Hedge** — once at least half the shards have finished, a running
  shard whose attempt has been live longer than ``hedge_after`` times
  the median completed-attempt duration gets a speculative second copy.
  First completion wins; the loser is terminated. Ties break toward
  the lowest attempt number — and because both copies run the same
  per-pipeline rng streams they are byte-identical, so the winner
  choice *cannot* change the merged rows, only the wall clock.
* **Quarantine** — a shard that fails ``max_attempts`` times is given
  up on for this run: the merge skips it, the run completes as a
  partial-but-valid store, and a structured :class:`DegradationReport`
  (quarantined shards, lost pipelines, attempts histogram,
  recovered-vs-lost compute) is persisted as ``degradation.json`` in
  the journal and rendered by ``repro fleet-status``. A later
  ``--resume`` re-arms quarantined shards with fresh attempts.
* **Fault budget** — ``fault_budget`` caps total recovery attempts
  (reschedules + hedges) across the run. A systemically broken run
  (every worker dying) exhausts the budget after a handful of
  attempts and fails fast with a diagnosis instead of thrashing
  through ``shards × max_attempts`` doomed re-runs.

Supervised attempts run as dedicated ``multiprocessing.Process``
workers (not a ``ProcessPoolExecutor``): a pool cannot terminate one
hung member, which is precisely the recovery a supervisor exists to
perform. Each attempt gets a private scratch directory under
``<journal>/attempts/`` for its payload and heartbeat; the winning
attempt's files are promoted into the canonical journal names so
``--resume`` and ``fleet-status`` see exactly the layout an
unsupervised run produces. When process spawn is unavailable (sandbox,
``in_process=True``) the supervisor degrades to inline attempts:
reschedule and quarantine semantics are identical, while stall
detection and hedging — which require a concurrently observable
worker — are naturally inert.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import statistics
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..corpus.config import CorpusConfig
from ..faults.injector import WorkerCrashError, WorkerHangError
from ..faults.journal import ShardJournal
from ..faults.plan import FaultKind, FaultPlan
from ..faults.retry import RetryPolicy
from ..obs.fleetwatch import DEFAULT_STALL_AFTER, read_status_file
from ..obs.logging import get_logger
from ..obs.tracing import TraceContext

__all__ = [
    "DegradationReport",
    "FleetSupervisor",
    "QuarantinedShard",
    "SupervisorPolicy",
    "render_degradation",
]

_log = get_logger("fleet.supervisor")

#: Exit code of an injected kill-mode worker crash (see workers.py).
_KILL_EXIT_CODE = 17


@dataclass(frozen=True)
class SupervisorPolicy:
    """The supervision knobs, CLI-surfaced as ``generate --supervise``.

    ``hedge_after`` is a straggler factor, not seconds: a shard is
    hedged when its running attempt is older than ``hedge_after ×
    median completed-attempt duration`` (and at least half the shards
    have completed, so the median means something). ``None`` disables
    hedging. ``fault_budget=None`` means unlimited recovery attempts.
    """

    max_attempts: int = 3
    stall_after: float = DEFAULT_STALL_AFTER
    hedge_after: float | None = None
    fault_budget: int | None = None
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.stall_after <= 0:
            raise ValueError("stall_after must be > 0")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError("hedge_after must be > 0")
        if self.fault_budget is not None and self.fault_budget < 0:
            raise ValueError("fault_budget must be >= 0")


@dataclass(frozen=True)
class QuarantinedShard:
    """One shard the supervisor gave up on this run."""

    shard_index: int
    start: int
    stop: int
    attempts: int
    failure_kind: str
    message: str
    reason: str  # max_attempts | fault_budget

    @property
    def n_pipelines(self) -> int:
        """Pipelines lost to this quarantine."""
        return self.stop - self.start


@dataclass
class DegradationReport:
    """How far a supervised run degraded from the fault-free ideal.

    The pipeline accounting is an exact partition:
    ``merged_pipelines + lost_pipelines == planned_pipelines`` — every
    planned pipeline is either in the merged store or attributed to a
    named quarantined shard. ``recovered_*`` tallies work that
    in-run supervision saved (winning attempts > 1);
    ``lost_cpu_seconds`` is compute spent on attempts that produced
    nothing (failed, stalled, or hedge losers).
    """

    planned_pipelines: int
    planned_shards: int
    merged_pipelines: int = 0
    quarantined: list[QuarantinedShard] = field(default_factory=list)
    attempts_histogram: dict[int, int] = field(default_factory=dict)
    reschedules: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    stalls_detected: int = 0
    fault_budget: int | None = None
    budget_spent: int = 0
    budget_exhausted: bool = False
    recovered_pipelines: int = 0
    recovered_cpu_seconds: float = 0.0
    lost_cpu_seconds: float = 0.0

    @property
    def lost_pipelines(self) -> int:
        """Pipelines missing from the merged store (quarantined)."""
        return sum(q.n_pipelines for q in self.quarantined)

    @property
    def degraded(self) -> bool:
        """Whether the run is partial (any shard quarantined)."""
        return bool(self.quarantined)

    @property
    def recovered_shards(self) -> int:
        """Shards that completed only thanks to supervision."""
        return sum(count for attempts, count
                   in self.attempts_histogram.items() if attempts > 1) \
            - len(self.quarantined)

    def to_dict(self) -> dict:
        """JSON shape persisted as ``degradation.json``."""
        out = asdict(self)
        out["lost_pipelines"] = self.lost_pipelines
        out["degraded"] = self.degraded
        # JSON objects key by string; keep the histogram round-trippable.
        out["attempts_histogram"] = {
            str(k): v for k, v in sorted(self.attempts_histogram.items())}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationReport":
        """Inverse of :meth:`to_dict` (tolerant of missing keys)."""
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["quarantined"] = [
            QuarantinedShard(**q) for q in data.get("quarantined", [])]
        kwargs["attempts_histogram"] = {
            int(k): int(v)
            for k, v in data.get("attempts_histogram", {}).items()}
        kwargs.setdefault("planned_pipelines", 0)
        kwargs.setdefault("planned_shards", 0)
        return cls(**kwargs)


def render_degradation(report: DegradationReport) -> str:
    """Human-readable degradation block for the CLI and fleet-status."""
    lines = []
    if report.degraded:
        lines.append(
            f"degraded run: {report.merged_pipelines}/"
            f"{report.planned_pipelines} pipelines merged, "
            f"{report.lost_pipelines} lost to "
            f"{len(report.quarantined)} quarantined shard(s)")
        for q in report.quarantined:
            lines.append(
                f"  quarantined shard {q.shard_index} "
                f"[pipelines {q.start}..{q.stop - 1}] after "
                f"{q.attempts} attempt(s): {q.failure_kind}: "
                f"{q.message} ({q.reason})")
    else:
        lines.append(
            f"recovered run: all {report.planned_pipelines} pipelines "
            f"merged despite {report.reschedules} reschedule(s)")
    histogram = ", ".join(
        f"{attempts}x{count}" for attempts, count
        in sorted(report.attempts_histogram.items()))
    lines.append(f"  attempts histogram (attempts x shards): {histogram}")
    lines.append(
        f"  supervision: {report.reschedules} reschedule(s), "
        f"{report.stalls_detected} stall(s) detected, "
        f"{report.hedges} hedge(s) ({report.hedge_wins} won)")
    lines.append(
        f"  compute: {report.recovered_cpu_seconds:.1f}s recovered on "
        f"{report.recovered_pipelines} pipeline(s), "
        f"{report.lost_cpu_seconds:.1f}s lost to dead attempts")
    if report.fault_budget is not None:
        exhausted = " — EXHAUSTED, run failed fast" \
            if report.budget_exhausted else ""
        lines.append(
            f"  fault budget: {report.budget_spent}/"
            f"{report.fault_budget} recovery attempts{exhausted}")
    return "\n".join(lines)


def _attempt_main(conn, spec, config, telemetry, exec_cache, fault_plan,
                  retry_policy, attempt_dir, armed, trace_ctx, profile,
                  attempt) -> None:
    """Worker-process entry point for one supervised attempt.

    Sends exactly one message on ``conn``: ``("done", shard, attempt,
    ShardResult)`` or ``("failed", shard, attempt, kind, message)``.
    A kill-mode injected crash exits the process without sending; an
    injected hang sleeps forever without sending — the supervisor
    reads both from process state, not the pipe.
    """
    from .workers import run_shard

    try:
        result = run_shard(
            spec, config, telemetry, exec_cache, fault_plan,
            retry_policy, attempt_dir, armed, trace_ctx=trace_ctx,
            serialize=True, profile=profile, attempt=attempt)
    except WorkerHangError as exc:
        _send(conn, ("failed", spec.shard_index, attempt,
                     "worker_hang", str(exc)))
    except WorkerCrashError as exc:
        _send(conn, ("failed", spec.shard_index, attempt,
                     "worker_crash", str(exc)))
    except Exception as exc:  # one attempt lost, never the supervisor
        _send(conn, ("failed", spec.shard_index, attempt, "error",
                     f"{type(exc).__name__}: {exc}"))
    else:
        _send(conn, ("done", spec.shard_index, attempt, result))
    finally:
        conn.close()


def _send(conn, message) -> None:
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass  # The supervisor went away; nothing left to report to.


@dataclass
class _Attempt:
    """One live (or just-finished) attempt the supervisor tracks."""

    spec: object
    attempt: int
    process: object
    conn: object
    directory: Path
    started: float
    hedge: bool = False

    @property
    def shard_index(self) -> int:
        return self.spec.shard_index


@dataclass
class _ShardState:
    """Supervision bookkeeping for one shard."""

    spec: object
    attempts_used: int = 0
    live: list = field(default_factory=list)
    done: bool = False
    quarantined: bool = False
    last_kind: str = ""
    last_message: str = ""
    last_failed_attempt: int = 0
    winning_attempt: int = 0


class FleetSupervisor:
    """Coordinator-side supervision loop for one fleet run.

    Constructed by :func:`~repro.fleet.workers.generate_corpus_fleet`
    when ``supervise=True``; :meth:`run` replaces the plain pool loop
    for the shards that still need simulating.
    """

    def __init__(self, config: CorpusConfig, journal: ShardJournal,
                 policy: SupervisorPolicy | None = None, *,
                 telemetry: bool = False, exec_cache: bool = False,
                 fault_plan: FaultPlan | None = None,
                 retry_policy: RetryPolicy | None = None,
                 trace_ctx_for=None, profile: bool = False,
                 in_process: bool = False) -> None:
        self.config = config
        self.journal = journal
        self.policy = policy or SupervisorPolicy()
        self.telemetry = telemetry
        self.exec_cache = exec_cache
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.trace_ctx_for = trace_ctx_for or (lambda spec, attempt: None)
        self.profile = profile
        self.in_process = in_process
        self.used_processes = False
        self._inline = False
        self.results: dict[int, object] = {}
        self.failures: dict[int, object] = {}
        self._state: dict[int, _ShardState] = {}
        self._report: DegradationReport | None = None

    # ------------------------------------------------------------ public

    def run(self, to_run, armed: dict[int, bool],
            planned_pipelines: int | None = None,
            planned_shards: int | None = None,
            pre_merged_pipelines: int = 0):
        """Supervise ``to_run`` to completion or quarantine.

        ``armed`` says, per shard, whether an injected worker fault may
        still fire (it fires once per journal unless ``repeat``).
        ``planned_*`` / ``pre_merged_pipelines`` fold already-resumed
        shards into the report so its accounting partitions the whole
        plan, not just the re-run slice.

        Returns ``(results, failures, report)`` — the same shapes the
        unsupervised pool loop produces, plus the
        :class:`DegradationReport`.
        """
        self._state = {spec.shard_index: _ShardState(spec=spec)
                       for spec in to_run}
        self._report = DegradationReport(
            planned_pipelines=planned_pipelines
            if planned_pipelines is not None
            else sum(s.n_pipelines for s in to_run),
            planned_shards=planned_shards if planned_shards is not None
            else len(to_run),
            fault_budget=self.policy.fault_budget)
        self._report.merged_pipelines = pre_merged_pipelines
        self._armed_first = dict(armed)
        if not to_run:
            return self.results, self.failures, self._finalize()
        self.journal.record_event(
            "supervision_started", shards=len(to_run),
            max_attempts=self.policy.max_attempts,
            stall_after=self.policy.stall_after,
            hedge_after=self.policy.hedge_after,
            fault_budget=self.policy.fault_budget)
        if self.in_process:
            self._run_inline(to_run)
        else:
            self._run_processes(to_run)
        return self.results, self.failures, self._finalize()

    @property
    def report(self) -> DegradationReport | None:
        """The degradation report (available after :meth:`run`)."""
        return self._report

    # ------------------------------------------------------ process mode

    def _run_processes(self, to_run) -> None:
        launched_any = False
        try:
            for spec in to_run:
                self._launch(spec, attempt=1,
                             armed=self._armed_first.get(
                                 spec.shard_index, True))
                launched_any = True
        except OSError as exc:
            # The sandbox denied processes. Terminate anything that did
            # start, then degrade every unresolved shard to inline.
            _log.warning("supervisor_pool_unavailable",
                         reason=type(exc).__name__, fallback="inline")
            for state in self._state.values():
                for attempt in state.live:
                    self._reap(attempt, terminate=True)
                state.live.clear()
            self._cleanup_attempt_dirs()
            self._run_inline([s.spec for s in self._state.values()
                              if not s.done and not s.quarantined])
            return
        if launched_any:
            self.used_processes = True
        while any(state.live for state in self._state.values()):
            progressed = self._poll()
            now = time.time()
            self._check_stalls(now)
            self._maybe_hedge(now)
            if not progressed:
                time.sleep(self.policy.poll_interval)
        self._cleanup_attempt_dirs()

    def _launch(self, spec, attempt: int, armed: bool,
                hedge: bool = False) -> None:
        attempt_dir = (self.journal.directory / "attempts"
                       / f"shard-{spec.shard_index:04d}-a{attempt}")
        attempt_dir.mkdir(parents=True, exist_ok=True)
        recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_attempt_main,
            args=(send_conn, spec, self.config, self.telemetry,
                  self.exec_cache, self.fault_plan, self.retry_policy,
                  str(attempt_dir), armed,
                  self.trace_ctx_for(spec, attempt), self.profile,
                  attempt),
            daemon=True)
        try:
            process.start()
        finally:
            send_conn.close()  # Parent keeps only the read end.
        state = self._state[spec.shard_index]
        state.attempts_used = max(state.attempts_used, attempt)
        state.live.append(_Attempt(
            spec=spec, attempt=attempt, process=process, conn=recv_conn,
            directory=attempt_dir, started=time.time(), hedge=hedge))
        self.journal.record_event(
            "attempt_started", shard=spec.shard_index, attempt=attempt,
            hedge=hedge, armed=armed, pid=process.pid)

    def _poll(self) -> bool:
        """Drain attempt outcomes; returns whether anything resolved.

        Attempts are visited in (shard, attempt) order, so when a
        hedge pair both have results buffered, the lower attempt wins
        deterministically — harmless for row content (identical rng
        makes the copies byte-identical) but it keeps journaled
        provenance stable run-to-run.
        """
        progressed = False
        for state in self._state.values():
            for attempt in sorted(list(state.live),
                                  key=lambda a: a.attempt):
                if attempt not in state.live:
                    continue  # A sibling's win already reaped it.
                message = None
                try:
                    if attempt.conn.poll():
                        message = attempt.conn.recv()
                except (EOFError, OSError):
                    message = None  # Died mid-send: treat as dead below.
                if message is not None:
                    progressed = True
                    self._handle_message(state, attempt, message)
                elif not attempt.process.is_alive():
                    progressed = True
                    self._handle_dead(state, attempt)
        return progressed

    def _handle_message(self, state: _ShardState, attempt: _Attempt,
                        message) -> None:
        kind = message[0]
        if kind == "done":
            result = message[3]
            self._reap(attempt)
            state.live.remove(attempt)
            self._complete(state, attempt, result)
        else:
            _, _, _, failure_kind, failure_message = message
            self._reap(attempt)
            state.live.remove(attempt)
            self._attempt_failed(state, attempt, failure_kind,
                                 failure_message,
                                 crashed=failure_kind in (
                                     "worker_crash", "worker_hang"))

    def _handle_dead(self, state: _ShardState, attempt: _Attempt) -> None:
        """A process died without delivering a result (kill / OOM)."""
        exitcode = attempt.process.exitcode
        self._reap(attempt)
        state.live.remove(attempt)
        detail = "injected kill" if exitcode == _KILL_EXIT_CODE \
            else f"exitcode {exitcode}"
        self._attempt_failed(
            state, attempt, "worker_killed",
            f"worker for shard {attempt.shard_index} attempt "
            f"{attempt.attempt} died without a result ({detail})",
            crashed=True)

    def _check_stalls(self, now: float) -> None:
        """Terminate attempts whose heartbeat went silent too long."""
        for state in self._state.values():
            for attempt in list(state.live):
                last = self._last_heartbeat(attempt)
                if now - last <= self.policy.stall_after:
                    continue
                self._report.stalls_detected += 1
                self.journal.record_event(
                    "stall_detected", shard=attempt.shard_index,
                    attempt=attempt.attempt,
                    silent_seconds=round(now - last, 3))
                self._reap(attempt, terminate=True)
                state.live.remove(attempt)
                self._attempt_failed(
                    state, attempt, "worker_hang",
                    f"no heartbeat for {now - last:.1f}s "
                    f"(stall threshold {self.policy.stall_after:.1f}s)",
                    crashed=True)

    def _last_heartbeat(self, attempt: _Attempt) -> float:
        beat = read_status_file(
            attempt.directory
            / f"shard-{attempt.shard_index:04d}.status.json")
        updated = float(beat.get("updated_unix", 0.0)) if beat else 0.0
        return max(attempt.started, updated)

    def _maybe_hedge(self, now: float) -> None:
        if self.policy.hedge_after is None:
            return
        durations = [self.results[i].elapsed_seconds
                     for i, s in self._state.items() if s.done]
        if len(durations) < max(1, (len(self._state) + 1) // 2):
            return
        threshold = self.policy.hedge_after * statistics.median(durations)
        for state in self._state.values():
            if state.done or state.quarantined or len(state.live) != 1:
                continue
            attempt = state.live[0]
            if now - attempt.started <= threshold:
                continue
            if state.attempts_used >= self.policy.max_attempts \
                    or not self._spend_budget():
                continue
            hedge_attempt = state.attempts_used + 1
            self._report.hedges += 1
            self.journal.record_event(
                "hedged", shard=state.spec.shard_index,
                straggler_attempt=attempt.attempt,
                hedge_attempt=hedge_attempt,
                straggler_elapsed=round(now - attempt.started, 3),
                threshold=round(threshold, 3))
            # Hedges run disarmed: they are recovery copies, and an
            # identical injected fault would just burn the budget.
            self._launch(state.spec, attempt=hedge_attempt,
                         armed=False, hedge=True)

    # ------------------------------------------------------- inline mode

    def _run_inline(self, to_run) -> None:
        """Sequential fallback: same reschedule/quarantine semantics.

        Stall detection and hedging need a concurrently observable
        worker, so they are inert here — an injected hang degrades to
        :class:`WorkerHangError` inside ``run_shard`` (inline shards
        must never hang the driver) and lands in the same
        ``worker_hang`` reschedule path. The while loop *is* the
        rescheduler: ``_attempt_failed`` only decides reschedule vs
        quarantine, and a shard left neither done nor quarantined is
        re-attempted.
        """
        from .workers import run_shard

        self._inline = True
        for spec in to_run:
            state = self._state[spec.shard_index]
            armed = self._armed_first.get(spec.shard_index, True)
            while not state.done and not state.quarantined:
                attempt = state.attempts_used + 1
                state.attempts_used = attempt
                self.journal.record_event(
                    "attempt_started", shard=spec.shard_index,
                    attempt=attempt, hedge=False, armed=armed,
                    pid=os.getpid())
                started = time.time()
                shim = _Attempt(spec=spec, attempt=attempt,
                                process=None, conn=None,
                                directory=self.journal.directory,
                                started=started)
                try:
                    result = run_shard(
                        spec, self.config, self.telemetry,
                        self.exec_cache, self.fault_plan,
                        self.retry_policy, self.journal.directory,
                        armed,
                        trace_ctx=self.trace_ctx_for(spec, attempt),
                        profile=self.profile, attempt=attempt)
                except WorkerHangError as exc:
                    self._attempt_failed(state, shim, "worker_hang",
                                         str(exc), crashed=True)
                except WorkerCrashError as exc:
                    self._attempt_failed(state, shim, "worker_crash",
                                         str(exc), crashed=True)
                except Exception as exc:
                    self._attempt_failed(
                        state, shim, "error",
                        f"{type(exc).__name__}: {exc}")
                else:
                    self._complete(state, shim, result, promote=False)
                # A rescheduled attempt runs disarmed unless the fault
                # plan says the shard is broken every time.
                armed = self._repeat_fault(spec.shard_index)

    # ------------------------------------------------------- transitions

    def _complete(self, state: _ShardState, attempt: _Attempt,
                  result, promote: bool = True) -> None:
        if state.done:
            # A sibling (hedge) already won; this copy's work is moot.
            self._report.lost_cpu_seconds += result.elapsed_seconds
            self.journal.record_event(
                "hedge_lost", shard=attempt.shard_index,
                attempt=attempt.attempt, outcome="finished_second")
            return
        state.done = True
        state.winning_attempt = attempt.attempt
        result.transfer_seconds = max(
            0.0, time.time() - result.finished_unix)
        self.results[attempt.shard_index] = result
        if promote:
            self._promote(attempt)
        rescheduled_from = state.last_failed_attempt \
            if attempt.attempt > 1 else 0
        self.journal.record_done(attempt.shard_index,
                                 attempt=attempt.attempt,
                                 rescheduled_from=rescheduled_from)
        self.journal.record_event(
            "attempt_completed", shard=attempt.shard_index,
            attempt=attempt.attempt, hedge=attempt.hedge,
            elapsed=round(result.elapsed_seconds, 3),
            rescheduled_from=rescheduled_from)
        self._report.merged_pipelines += attempt.spec.n_pipelines
        if attempt.attempt > 1:
            self._report.recovered_pipelines += attempt.spec.n_pipelines
            self._report.recovered_cpu_seconds += result.elapsed_seconds
            if attempt.hedge:
                self._report.hedge_wins += 1
        # First-completion-wins: cancel the slower sibling copies.
        for sibling in list(state.live):
            self._report.lost_cpu_seconds += \
                time.time() - sibling.started
            self.journal.record_event(
                "hedge_lost", shard=sibling.shard_index,
                attempt=sibling.attempt, outcome="terminated")
            self._reap(sibling, terminate=True)
            state.live.remove(sibling)

    def _attempt_failed(self, state: _ShardState, attempt: _Attempt,
                        kind: str, message: str,
                        crashed: bool = False) -> None:
        if state.done:
            # The hedge sibling already delivered this shard.
            self._report.lost_cpu_seconds += \
                time.time() - attempt.started
            return
        self._report.lost_cpu_seconds += time.time() - attempt.started
        rescheduled_from = state.last_failed_attempt
        state.last_kind = kind
        state.last_message = message
        state.last_failed_attempt = attempt.attempt
        self.journal.record_failure(
            attempt.shard_index, kind, message, crashed=crashed,
            attempt=attempt.attempt, rescheduled_from=rescheduled_from)
        self.journal.record_event(
            "attempt_failed", shard=attempt.shard_index,
            attempt=attempt.attempt, failure_kind=kind, message=message)
        _log.warning("supervised_attempt_failed",
                     shard=attempt.shard_index, attempt=attempt.attempt,
                     kind=kind, reason=message)
        if state.live:
            # A hedge copy is still running — it may yet deliver, and
            # its own failure will re-enter this path with the live
            # list empty.
            return
        if state.attempts_used >= self.policy.max_attempts:
            self._quarantine(state, reason="max_attempts")
        elif not self._spend_budget():
            self._quarantine(state, reason="fault_budget")
        else:
            self._reschedule(state)

    def _reschedule(self, state: _ShardState) -> None:
        next_attempt = state.attempts_used + 1
        self._report.reschedules += 1
        self.journal.record_event(
            "rescheduled", shard=state.spec.shard_index,
            attempt=next_attempt,
            rescheduled_from=state.last_failed_attempt,
            failure_kind=state.last_kind)
        if self._inline:
            # The inline while-loop re-attempts any shard left neither
            # done nor quarantined; launching here would double-run it.
            return
        # The injected worker fault fired once already; only a
        # ``repeat`` spec (systemically broken shard) re-arms it.
        self._launch(state.spec, attempt=next_attempt,
                     armed=self._repeat_fault(state.spec.shard_index))

    def _quarantine(self, state: _ShardState, reason: str) -> None:
        from .workers import ShardFailure

        state.quarantined = True
        spec = state.spec
        if reason == "fault_budget":
            self._report.budget_exhausted = True
        self.journal.record_quarantine(
            spec.shard_index, state.last_kind, state.last_message,
            attempt=state.attempts_used)
        self.journal.record_event(
            "quarantined", shard=spec.shard_index,
            attempts=state.attempts_used, reason=reason,
            failure_kind=state.last_kind)
        _log.warning("shard_quarantined", shard=spec.shard_index,
                     attempts=state.attempts_used, reason=reason,
                     kind=state.last_kind)
        self.failures[spec.shard_index] = ShardFailure(
            spec.shard_index, spec.start, spec.stop, state.last_kind,
            f"quarantined after {state.attempts_used} attempt(s) "
            f"({reason}): {state.last_message}")
        self._report.quarantined.append(QuarantinedShard(
            shard_index=spec.shard_index, start=spec.start,
            stop=spec.stop, attempts=state.attempts_used,
            failure_kind=state.last_kind, message=state.last_message,
            reason=reason))

    def _spend_budget(self) -> bool:
        """Consume one recovery attempt from the fault budget."""
        budget = self.policy.fault_budget
        if budget is not None and self._report.budget_spent >= budget:
            return False
        self._report.budget_spent += 1
        return True

    def _repeat_fault(self, shard_index: int) -> bool:
        if self.fault_plan is None:
            return False
        spec = self.fault_plan.worker_fault(shard_index)
        return spec is not None and spec.repeat

    # ---------------------------------------------------------- plumbing

    def _reap(self, attempt: _Attempt, terminate: bool = False) -> None:
        if attempt.process is not None:
            if terminate and attempt.process.is_alive():
                attempt.process.terminate()
            attempt.process.join(timeout=5.0)
            if attempt.process.is_alive():  # terminate() ignored
                attempt.process.kill()
                attempt.process.join(timeout=5.0)
        if attempt.conn is not None:
            try:
                attempt.conn.close()
            except OSError:
                pass

    def _promote(self, attempt: _Attempt) -> None:
        """Move the winning attempt's files to canonical journal names.

        After promotion the journal looks exactly like an unsupervised
        run wrote it — ``--resume`` and ``fleet-status`` need no
        supervision awareness to read it.
        """
        stem = f"shard-{attempt.shard_index:04d}"
        for suffix in (".db", ".pkl", ".spans.jsonl", ".folded",
                       ".status.json"):
            source = attempt.directory / (stem + suffix)
            if source.exists():
                os.replace(source, self.journal.directory
                           / (stem + suffix))
        shutil.rmtree(attempt.directory, ignore_errors=True)

    def _cleanup_attempt_dirs(self) -> None:
        shutil.rmtree(self.journal.directory / "attempts",
                      ignore_errors=True)

    def _finalize(self) -> DegradationReport:
        report = self._report
        for state in self._state.values():
            report.attempts_histogram[state.attempts_used] = \
                report.attempts_histogram.get(state.attempts_used, 0) + 1
        if report.degraded:
            # Partial run: the journal outlives the run, so the report
            # does too (fleet-status renders it post-mortem).
            self.journal.write_degradation(report.to_dict())
        self.journal.record_event(
            "supervision_finished", merged=report.merged_pipelines,
            lost=report.lost_pipelines, reschedules=report.reschedules,
            hedges=report.hedges, quarantined=len(report.quarantined),
            budget_spent=report.budget_spent,
            budget_exhausted=report.budget_exhausted)
        return report
