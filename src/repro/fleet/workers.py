"""Sharded parallel corpus generation.

The sequential generator simulates every pipeline in one loop, threading
a single random stream through all of them — correct, but neither
parallel nor partitionable. The fleet path derives an *independent* rng
per pipeline from ``(config.seed, pipeline index)`` via
``SeedSequence.spawn_key``, which makes each pipeline's simulation a
pure function of the config and its index. Pipelines can then be
partitioned into contiguous shards, simulated in worker processes into
private stores, and merged back (:mod:`repro.fleet.merge`) into a trace
that is *identical* for any worker count with the same seed — the
reproducible-pipeline discipline of Sugimura & Hartl applied to the
corpus generator itself.

Note the fleet path is intentionally a different (per-pipeline) seeding
scheme from ``generate_corpus``'s shared-stream scheme: ``--workers 1``
is the fleet's own sequential baseline, and existing seeds of the
legacy path are untouched.

Worker discipline:

* Workers install a **fresh metrics registry** before simulating — a
  forked child inherits the parent's counter values, and returning
  those would double-count. The parent folds each shard's counter
  snapshot back into its own registry, which is what keeps
  ``corpus.pipelines_generated`` (and progress lines) correct under
  multi-process generation. Histogram reservoirs are not folded back
  (no lossless merge exists); fleet-level histograms reflect the
  parent process only.
* Workers return a :class:`~repro.fleet.merge.StoreSnapshot`, not a
  ``MetadataStore`` — the store object is not picklable (its bound
  instruments hold locks).
"""

from __future__ import annotations

import concurrent.futures
import pickle
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..corpus.config import CorpusConfig
from ..corpus.generator import (Corpus, PipelineRecord, ProgressCallback,
                                print_progress_every, sample_pipeline_plan,
                                _simulate_pipeline)
from ..mlmd import MetadataStore
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from .cache import ExecutionCache
from .merge import StoreSnapshot, merge_snapshot, snapshot_store

__all__ = [
    "FleetReport",
    "ShardResult",
    "ShardSpec",
    "generate_corpus_fleet",
    "pipeline_rng",
    "plan_shards",
    "run_shard",
]

_log = get_logger("fleet.workers")


def pipeline_rng(seed: int, index: int) -> np.random.Generator:
    """The derived random stream of pipeline ``index``.

    ``SeedSequence(entropy=seed, spawn_key=(index,))`` gives every
    pipeline a statistically independent stream that depends only on
    the corpus seed and the pipeline's global index — never on which
    shard or worker simulates it.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


@dataclass(frozen=True)
class ShardSpec:
    """One worker's contiguous slice of global pipeline indices."""

    shard_index: int
    start: int
    stop: int

    @property
    def n_pipelines(self) -> int:
        """Pipelines in this shard."""
        return self.stop - self.start


def plan_shards(n_pipelines: int, workers: int) -> list[ShardSpec]:
    """Partition ``range(n_pipelines)`` into contiguous balanced shards.

    Contiguity matters: merging contiguous shards in shard order
    reproduces the sequential (workers=1) id assignment exactly.
    """
    if n_pipelines < 1:
        raise ValueError("n_pipelines must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, n_pipelines)
    base, extra = divmod(n_pipelines, workers)
    shards = []
    start = 0
    for shard_index in range(workers):
        size = base + (1 if shard_index < extra else 0)
        shards.append(ShardSpec(shard_index=shard_index, start=start,
                                stop=start + size))
        start += size
    return shards


@dataclass
class ShardResult:
    """What one worker returns: the serialized shard plus its tallies."""

    spec: ShardSpec
    snapshot: StoreSnapshot
    records: list[PipelineRecord]
    cache_hits: int = 0
    cache_misses: int = 0
    saved_cpu_hours: float = 0.0
    counters: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0


def run_shard(spec: ShardSpec, config: CorpusConfig,
              telemetry: bool = False,
              exec_cache: bool = False) -> ShardResult:
    """Simulate one shard into a private store (worker entry point).

    Runs in a worker process (or inline for workers=1): installs a
    fresh registry, simulates pipelines ``[spec.start, spec.stop)``
    each on its derived rng, and returns a picklable snapshot.
    """
    started = perf_counter()
    previous_registry = set_registry(MetricsRegistry())
    try:
        registry = get_registry()
        pipelines_done = registry.counter("corpus.pipelines_generated")
        store = MetadataStore()
        if telemetry:
            from ..obs.provenance import attach_sink
            attach_sink(store)
        records = []
        hits = misses = 0
        saved = 0.0
        for index in range(spec.start, spec.stop):
            rng = pipeline_rng(config.seed, index)
            archetype, start_time = sample_pipeline_plan(rng, config,
                                                         index)
            # Per-pipeline cache scope: pipelines never share artifacts,
            # and pipeline-local hits are shard-assignment-invariant.
            cache = ExecutionCache() if exec_cache else None
            with registry.timer("corpus.pipeline_seconds"):
                record = _simulate_pipeline(
                    store, config, archetype, rng, start_time,
                    execution_cache=cache)
            pipelines_done.value += 1
            records.append(record)
            if cache is not None:
                hits += cache.hits
                misses += cache.misses
                saved += cache.saved_cpu_hours
        counters = [record for record in registry.snapshot()
                    if record["kind"] == "counter"]
        return ShardResult(
            spec=spec, snapshot=snapshot_store(store), records=records,
            cache_hits=hits, cache_misses=misses, saved_cpu_hours=saved,
            counters=counters,
            elapsed_seconds=perf_counter() - started)
    finally:
        set_registry(previous_registry)


@dataclass
class FleetReport:
    """Roll-up of one fleet generation run."""

    workers: int
    shards: list[ShardSpec]
    pipelines: int
    exec_cache: bool
    cache_hits: int = 0
    cache_misses: int = 0
    saved_cpu_hours: float = 0.0
    wall_seconds: float = 0.0
    shard_seconds: list[float] = field(default_factory=list)
    used_processes: bool = False

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cacheable executions (0.0 when cache disabled)."""
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0


def _fold_counters(result: ShardResult) -> None:
    """Fold one shard's counter snapshot into the parent registry.

    This is what keeps multi-process counts honest: the shard counted
    its own pipelines/executions in its private registry, and the
    parent adds those totals to its instruments instead of reading a
    registry the workers never touched.
    """
    registry = get_registry()
    for record in result.counters:
        if record["value"]:
            registry.counter(record["name"],
                             **record["labels"]).inc(record["value"])


def generate_corpus_fleet(config: CorpusConfig | None = None,
                          workers: int = 1,
                          exec_cache: bool = False,
                          telemetry: bool = False,
                          progress: bool = False,
                          progress_callback: ProgressCallback | None = None,
                          in_process: bool = False
                          ) -> tuple[Corpus, FleetReport]:
    """Generate a corpus by sharded (optionally parallel) simulation.

    Deterministic given ``config.seed`` for *any* ``workers`` value:
    the merged store is identical (same ids, same rows) whether one
    worker or eight simulated it. With ``exec_cache=True`` every runner
    carries a content-addressed :class:`ExecutionCache` and redundant
    re-executions are replayed as ``CACHED`` executions.

    Args:
        config: Corpus configuration (default ``CorpusConfig()``).
        workers: Shard count; ``> 1`` simulates shards in worker
            processes (falling back to in-process on pool failure).
        exec_cache: Enable the content-addressed execution cache.
        telemetry: Persist provenance telemetry rows, as in
            :func:`repro.corpus.generate_corpus`.
        progress: Print the classic progress line per merged shard.
        progress_callback: Custom progress hook ``(done, total, store)``,
            called after each shard is merged.
        in_process: Force inline shard execution even for workers > 1
            (deterministic tests without process spawn overhead).

    Returns:
        The merged :class:`Corpus` plus a :class:`FleetReport`.
    """
    config = config or CorpusConfig()
    started = perf_counter()
    shards = plan_shards(config.n_pipelines, workers)
    if progress_callback is None and progress:
        # Fleet progress is shard-granular, so report on every merge.
        progress_callback = print_progress_every(1)
    _log.info("fleet_generation_started", pipelines=config.n_pipelines,
              workers=len(shards), seed=config.seed,
              exec_cache=exec_cache)

    used_processes = False
    results: list[ShardResult]
    if len(shards) == 1 or in_process:
        results = [run_shard(spec, config, telemetry=telemetry,
                             exec_cache=exec_cache) for spec in shards]
    else:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=len(shards)) as pool:
                futures = [pool.submit(run_shard, spec, config,
                                       telemetry, exec_cache)
                           for spec in shards]
                results = [future.result() for future in futures]
            used_processes = True
        except (OSError, pickle.PicklingError,
                concurrent.futures.process.BrokenProcessPool) as exc:
            # No usable process pool (restricted sandbox, fork failure):
            # the run degrades to inline shards, same result, no speedup.
            _log.warning("fleet_pool_unavailable",
                         reason=type(exc).__name__, fallback="in_process")
            results = [run_shard(spec, config, telemetry=telemetry,
                                 exec_cache=exec_cache)
                       for spec in shards]

    store = MetadataStore()
    if telemetry:
        from ..obs.provenance import attach_sink
        attach_sink(store)
    corpus = Corpus(store=store, config=config)
    report = FleetReport(workers=len(shards), shards=shards,
                         pipelines=config.n_pipelines,
                         exec_cache=exec_cache,
                         used_processes=used_processes)
    done = 0
    # Merge in shard order: contiguous shards re-inserted in order give
    # the same global id assignment as a single-worker run.
    for result in sorted(results, key=lambda r: r.spec.shard_index):
        maps = merge_snapshot(store, result.snapshot)
        for record in result.records:
            record.context_id = maps.context_ids[record.context_id]
            corpus.records.append(record)
        _fold_counters(result)
        report.cache_hits += result.cache_hits
        report.cache_misses += result.cache_misses
        report.saved_cpu_hours += result.saved_cpu_hours
        report.shard_seconds.append(result.elapsed_seconds)
        done += result.spec.n_pipelines
        if progress_callback is not None:
            progress_callback(done, config.n_pipelines, store)
    if telemetry and store.telemetry_sink is not None:
        # The fleet-level instrument snapshot (with folded-in shard
        # counters) persists into the merged store, mirroring the
        # sequential generator's end-of-run registry record.
        store.telemetry_sink.record_registry(get_registry())
    report.wall_seconds = perf_counter() - started
    _log.info("fleet_generated", pipelines=len(corpus.records),
              executions=store.num_executions, workers=len(shards),
              used_processes=used_processes,
              cache_hits=report.cache_hits,
              saved_cpu_hours=round(report.saved_cpu_hours, 3),
              wall_seconds=round(report.wall_seconds, 3))
    return corpus, report
