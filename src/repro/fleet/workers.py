"""Sharded parallel corpus generation.

The sequential generator simulates every pipeline in one loop, threading
a single random stream through all of them — correct, but neither
parallel nor partitionable. The fleet path derives an *independent* rng
per pipeline from ``(config.seed, pipeline index)`` via
``SeedSequence.spawn_key``, which makes each pipeline's simulation a
pure function of the config and its index. Pipelines can then be
partitioned into contiguous shards, simulated in worker processes into
private stores, and merged back (:mod:`repro.fleet.merge`) into a trace
that is *identical* for any worker count with the same seed — the
reproducible-pipeline discipline of Sugimura & Hartl applied to the
corpus generator itself.

Note the fleet path is intentionally a different (per-pipeline) seeding
scheme from ``generate_corpus``'s shared-stream scheme: ``--workers 1``
is the fleet's own sequential baseline, and existing seeds of the
legacy path are untouched.

Worker discipline:

* Workers install a **fresh metrics registry** before simulating — a
  forked child inherits the parent's counter values, and returning
  those would double-count. The parent folds each shard's counter
  snapshot back into its own registry, which is what keeps
  ``corpus.pipelines_generated`` (and progress lines) correct under
  multi-process generation. Histogram reservoirs are not folded back
  (no lossless merge exists); fleet-level histograms reflect the
  parent process only.
* Workers return a :class:`~repro.fleet.merge.StoreSnapshot`, not a
  ``MetadataStore`` — the store object is not picklable (its bound
  instruments hold locks).

Crash safety (:mod:`repro.faults`): a worker that raises — or is
killed outright — loses only its own shard. The driver records a
:class:`ShardFailure` per lost shard, merges every completed shard
into a partial-but-valid store, and (when a journal directory is
given) persists each finished shard's payload so a later
``resume=True`` run re-simulates *only* the failed or missing shards
and converges on the exact store a fault-free run produces.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from ..corpus.config import CorpusConfig
from ..corpus.generator import (Corpus, PipelineRecord, ProgressCallback,
                                print_progress_every, sample_pipeline_plan,
                                _simulate_pipeline)
from ..faults.injector import WorkerCrashError
from ..faults.journal import (ShardJournal, config_fingerprint,
                              write_shard_payload)
from ..faults.plan import FaultPlan, FaultSpec
from ..faults.retry import RetryPolicy
from ..mlmd import MetadataStore
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from .cache import ExecutionCache
from .merge import StoreSnapshot, merge_snapshot, snapshot_store

__all__ = [
    "FleetReport",
    "ShardFailure",
    "ShardResult",
    "ShardSpec",
    "generate_corpus_fleet",
    "pipeline_rng",
    "plan_shards",
    "run_shard",
]

_log = get_logger("fleet.workers")


def pipeline_rng(seed: int, index: int) -> np.random.Generator:
    """The derived random stream of pipeline ``index``.

    ``SeedSequence(entropy=seed, spawn_key=(index,))`` gives every
    pipeline a statistically independent stream that depends only on
    the corpus seed and the pipeline's global index — never on which
    shard or worker simulates it.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


@dataclass(frozen=True)
class ShardSpec:
    """One worker's contiguous slice of global pipeline indices."""

    shard_index: int
    start: int
    stop: int

    @property
    def n_pipelines(self) -> int:
        """Pipelines in this shard."""
        return self.stop - self.start


def plan_shards(n_pipelines: int, workers: int) -> list[ShardSpec]:
    """Partition ``range(n_pipelines)`` into contiguous balanced shards.

    Contiguity matters: merging contiguous shards in shard order
    reproduces the sequential (workers=1) id assignment exactly.
    """
    if n_pipelines < 1:
        raise ValueError("n_pipelines must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, n_pipelines)
    base, extra = divmod(n_pipelines, workers)
    shards = []
    start = 0
    for shard_index in range(workers):
        size = base + (1 if shard_index < extra else 0)
        shards.append(ShardSpec(shard_index=shard_index, start=start,
                                stop=start + size))
        start += size
    return shards


@dataclass
class ShardResult:
    """What one worker returns: the serialized shard plus its tallies."""

    spec: ShardSpec
    snapshot: StoreSnapshot
    records: list[PipelineRecord]
    cache_hits: int = 0
    cache_misses: int = 0
    saved_cpu_hours: float = 0.0
    counters: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class ShardFailure:
    """Structured record of one shard the fleet run could not complete."""

    shard_index: int
    start: int
    stop: int
    kind: str  # worker_crash | worker_killed | error
    message: str

    @property
    def n_pipelines(self) -> int:
        """Pipelines missing from the merged store because of this."""
        return self.stop - self.start


def _maybe_crash(crash: FaultSpec | None, spec: ShardSpec,
                 completed: int) -> None:
    """Fire an injected worker crash once ``completed`` pipelines ran.

    ``mode="kill"`` dies with ``os._exit`` — but only inside a real
    worker process; inline shards degrade to the raising mode so a
    single-process run never takes the driver down with it.
    """
    if crash is None or completed != crash.after_pipelines:
        return
    if crash.mode == "kill" and multiprocessing.parent_process() is not None:
        os._exit(17)
    raise WorkerCrashError(
        spec.shard_index,
        f"injected worker crash in shard {spec.shard_index} after "
        f"{completed} pipeline(s)")


def run_shard(spec: ShardSpec, config: CorpusConfig,
              telemetry: bool = False,
              exec_cache: bool = False,
              fault_plan: FaultPlan | None = None,
              retry_policy: RetryPolicy | None = None,
              journal_dir: str | Path | None = None,
              allow_crash: bool = True) -> ShardResult:
    """Simulate one shard into a private store (worker entry point).

    Runs in a worker process (or inline for workers=1): installs a
    fresh registry, simulates pipelines ``[spec.start, spec.stop)``
    each on its derived rng, and returns a picklable snapshot.

    With a ``fault_plan``, each pipeline gets its plan-derived fault
    injector (seeded by global index — shard-invariant), and a
    ``worker_crash`` rule targeting this shard kills the worker after
    its ``after_pipelines``-th pipeline (``allow_crash=False`` disarms
    it, e.g. on resume after the journal already saw the crash). With
    a ``journal_dir``, the finished shard's store and tallies are
    persisted there before returning — a crashed worker leaves no
    payload, only the driver-side failure entry.
    """
    started = perf_counter()
    crash = None
    if fault_plan is not None and allow_crash:
        crash = fault_plan.worker_crash(spec.shard_index)
    previous_registry = set_registry(MetricsRegistry())
    try:
        registry = get_registry()
        pipelines_done = registry.counter("corpus.pipelines_generated")
        store = MetadataStore()
        if telemetry:
            from ..obs.provenance import attach_sink
            attach_sink(store)
        records = []
        hits = misses = 0
        saved = 0.0
        for offset, index in enumerate(range(spec.start, spec.stop)):
            _maybe_crash(crash, spec, offset)
            rng = pipeline_rng(config.seed, index)
            archetype, start_time = sample_pipeline_plan(rng, config,
                                                         index)
            # Per-pipeline cache scope: pipelines never share artifacts,
            # and pipeline-local hits are shard-assignment-invariant.
            cache = ExecutionCache() if exec_cache else None
            injector = (fault_plan.injector(index)
                        if fault_plan is not None else None)
            with registry.timer("corpus.pipeline_seconds"):
                record = _simulate_pipeline(
                    store, config, archetype, rng, start_time,
                    execution_cache=cache, fault_injector=injector,
                    retry_policy=retry_policy)
            pipelines_done.value += 1
            records.append(record)
            if cache is not None:
                hits += cache.hits
                misses += cache.misses
                saved += cache.saved_cpu_hours
        counters = [record for record in registry.snapshot()
                    if record["kind"] == "counter"]
        elapsed = perf_counter() - started
        extras = dict(records=records, cache_hits=hits,
                      cache_misses=misses, saved_cpu_hours=saved,
                      counters=counters, elapsed_seconds=elapsed)
        if journal_dir is not None:
            # Counters were snapshotted first: the journal write's own
            # store ops must not leak into the folded tallies (resumed
            # and fresh merges must fold identical numbers).
            write_shard_payload(journal_dir, spec.shard_index, store,
                                extras)
        return ShardResult(spec=spec, snapshot=snapshot_store(store),
                           **extras)
    finally:
        set_registry(previous_registry)


@dataclass
class FleetReport:
    """Roll-up of one fleet generation run."""

    workers: int
    shards: list[ShardSpec]
    pipelines: int
    exec_cache: bool
    cache_hits: int = 0
    cache_misses: int = 0
    saved_cpu_hours: float = 0.0
    wall_seconds: float = 0.0
    shard_seconds: list[float] = field(default_factory=list)
    used_processes: bool = False
    failed_shards: list[ShardFailure] = field(default_factory=list)
    resumed_shards: int = 0
    journal_dir: str = ""

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cacheable executions (0.0 when cache disabled)."""
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    @property
    def complete(self) -> bool:
        """Whether every shard made it into the merged store."""
        return not self.failed_shards

    @property
    def missing_pipelines(self) -> int:
        """Pipelines absent from the merged store (failed shards)."""
        return sum(f.n_pipelines for f in self.failed_shards)


def _fold_counters(result: ShardResult) -> None:
    """Fold one shard's counter snapshot into the parent registry.

    This is what keeps multi-process counts honest: the shard counted
    its own pipelines/executions in its private registry, and the
    parent adds those totals to its instruments instead of reading a
    registry the workers never touched.
    """
    registry = get_registry()
    for record in result.counters:
        if record["value"]:
            registry.counter(record["name"],
                             **record["labels"]).inc(record["value"])


def generate_corpus_fleet(config: CorpusConfig | None = None,
                          workers: int = 1,
                          exec_cache: bool = False,
                          telemetry: bool = False,
                          progress: bool = False,
                          progress_callback: ProgressCallback | None = None,
                          in_process: bool = False,
                          fault_plan: FaultPlan | None = None,
                          retry_policy: RetryPolicy | None = None,
                          journal_dir: str | Path | None = None,
                          resume: bool = False
                          ) -> tuple[Corpus, FleetReport]:
    """Generate a corpus by sharded (optionally parallel) simulation.

    Deterministic given ``config.seed`` for *any* ``workers`` value:
    the merged store is identical (same ids, same rows) whether one
    worker or eight simulated it. With ``exec_cache=True`` every runner
    carries a content-addressed :class:`ExecutionCache` and redundant
    re-executions are replayed as ``CACHED`` executions.

    Args:
        config: Corpus configuration (default ``CorpusConfig()``).
        workers: Shard count; ``> 1`` simulates shards in worker
            processes (falling back to in-process on pool failure).
        exec_cache: Enable the content-addressed execution cache.
        telemetry: Persist provenance telemetry rows, as in
            :func:`repro.corpus.generate_corpus`.
        progress: Print the classic progress line per merged shard.
        progress_callback: Custom progress hook ``(done, total, store)``,
            called after each shard is merged.
        in_process: Force inline shard execution even for workers > 1
            (deterministic tests without process spawn overhead).
        fault_plan: Seeded :class:`~repro.faults.FaultPlan`; operator
            faults flow into every runner, ``worker_crash`` rules kill
            their target shard's worker.
        retry_policy: :class:`~repro.faults.RetryPolicy` honored by
            every runner (each attempt its own execution).
        journal_dir: Directory for the per-shard journal; enables
            crash-safe resume (see :mod:`repro.faults.journal`).
        resume: Reuse completed shards from ``journal_dir`` and
            re-simulate only failed/missing ones. Requires a journal
            written by a run with the identical config and plan.

    Returns:
        The merged :class:`Corpus` plus a :class:`FleetReport`. A run
        with failed shards still returns a valid (partial) corpus;
        inspect ``report.failed_shards`` / ``report.complete``.
    """
    config = config or CorpusConfig()
    if resume and journal_dir is None:
        raise ValueError("resume=True requires a journal_dir")
    started = perf_counter()
    shards = plan_shards(config.n_pipelines, workers)
    if progress_callback is None and progress:
        # Fleet progress is shard-granular, so report on every merge.
        progress_callback = print_progress_every(1)
    journal = None
    if journal_dir is not None:
        fingerprint = config_fingerprint(
            config, shards, exec_cache=exec_cache, telemetry=telemetry,
            fault_plan=fault_plan, retry_policy=retry_policy)
        journal = ShardJournal(journal_dir, fingerprint)
        journal.open(shards, resume=resume)
    _log.info("fleet_generation_started", pipelines=config.n_pipelines,
              workers=len(shards), seed=config.seed,
              exec_cache=exec_cache, resume=resume,
              faults=len(fault_plan.specs) if fault_plan else 0)

    results: dict[int, ShardResult] = {}
    failures: dict[int, ShardFailure] = {}
    to_run: list[ShardSpec] = []
    resumed = 0
    for spec in shards:
        if journal is not None and resume \
                and journal.is_done(spec.shard_index):
            shard_store, extras = journal.load_payload(spec.shard_index)
            results[spec.shard_index] = ShardResult(
                spec=spec, snapshot=snapshot_store(shard_store), **extras)
            resumed += 1
        else:
            to_run.append(spec)
    if resumed:
        _log.info("fleet_shards_resumed", resumed=resumed,
                  re_running=len(to_run))

    # An injected crash fires once per journal: a shard whose entry
    # already counted a crash runs disarmed on resume.
    allow_crash = {
        spec.shard_index:
            journal is None or journal.entry(spec.shard_index).crashes == 0
        for spec in to_run
    }
    payload_dir = journal.directory if journal is not None else None

    def record_done(spec: ShardSpec, result: ShardResult) -> None:
        results[spec.shard_index] = result
        if journal is not None:
            journal.record_done(spec.shard_index)

    def record_failure(spec: ShardSpec, kind: str, message: str,
                       crashed: bool = False) -> None:
        failures[spec.shard_index] = ShardFailure(
            spec.shard_index, spec.start, spec.stop, kind, message)
        if journal is not None:
            journal.record_failure(spec.shard_index, kind, message,
                                   crashed=crashed)
        _log.warning("fleet_shard_failed", shard=spec.shard_index,
                     kind=kind, reason=message)

    def run_inline(spec: ShardSpec) -> None:
        try:
            record_done(spec, run_shard(
                spec, config, telemetry, exec_cache, fault_plan,
                retry_policy, payload_dir,
                allow_crash[spec.shard_index]))
        except WorkerCrashError as exc:
            record_failure(spec, "worker_crash", str(exc), crashed=True)
        except Exception as exc:  # A worker bug loses one shard, not the run.
            record_failure(spec, "error", f"{type(exc).__name__}: {exc}")

    used_processes = False
    if to_run and (len(shards) == 1 or in_process or len(to_run) == 1):
        for spec in to_run:
            run_inline(spec)
    elif to_run:
        pool_casualties: list[ShardSpec] = []
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=len(to_run)) as pool:
                futures = {
                    pool.submit(run_shard, spec, config, telemetry,
                                exec_cache, fault_plan, retry_policy,
                                payload_dir,
                                allow_crash[spec.shard_index]): spec
                    for spec in to_run
                }
                for future in concurrent.futures.as_completed(futures):
                    spec = futures[future]
                    try:
                        record_done(spec, future.result())
                        used_processes = True
                    except WorkerCrashError as exc:
                        record_failure(spec, "worker_crash", str(exc),
                                       crashed=True)
                        used_processes = True
                    except concurrent.futures.process.BrokenProcessPool:
                        pool_casualties.append(spec)
                    except Exception as exc:
                        record_failure(
                            spec, "error",
                            f"{type(exc).__name__}: {exc}")
                        used_processes = True
        except (OSError, pickle.PicklingError,
                concurrent.futures.process.BrokenProcessPool) as exc:
            _log.warning("fleet_pool_unavailable",
                         reason=type(exc).__name__, fallback="in_process")
            pool_casualties = [
                spec for spec in to_run
                if spec.shard_index not in results
                and spec.shard_index not in failures]
        # A broken pool can't say which worker died. A shard whose plan
        # called for a kill-mode crash is the culprit — record it as
        # crashed; the rest are innocent victims of the shared pool (or
        # the sandbox denied processes entirely) and re-run inline.
        for spec in pool_casualties:
            crash = (fault_plan.worker_crash(spec.shard_index)
                     if fault_plan is not None else None)
            if crash is not None and crash.mode == "kill" \
                    and allow_crash[spec.shard_index]:
                used_processes = True
                record_failure(
                    spec, "worker_killed",
                    f"worker for shard {spec.shard_index} killed after "
                    f"{crash.after_pipelines} pipeline(s)", crashed=True)
            else:
                run_inline(spec)

    store = MetadataStore()
    if telemetry:
        from ..obs.provenance import attach_sink
        attach_sink(store)
    corpus = Corpus(store=store, config=config)
    report = FleetReport(workers=len(shards), shards=shards,
                         pipelines=config.n_pipelines,
                         exec_cache=exec_cache,
                         used_processes=used_processes,
                         resumed_shards=resumed,
                         journal_dir=str(journal.directory)
                         if journal is not None else "")
    done = 0
    # Merge in shard order: contiguous shards re-inserted in order give
    # the same global id assignment as a single-worker run. Failed
    # shards are skipped — the merged store stays valid, just partial.
    for spec in shards:
        result = results.get(spec.shard_index)
        if result is None:
            continue
        maps = merge_snapshot(store, result.snapshot)
        for record in result.records:
            record.context_id = maps.context_ids[record.context_id]
            corpus.records.append(record)
        _fold_counters(result)
        report.cache_hits += result.cache_hits
        report.cache_misses += result.cache_misses
        report.saved_cpu_hours += result.saved_cpu_hours
        report.shard_seconds.append(result.elapsed_seconds)
        done += result.spec.n_pipelines
        if progress_callback is not None:
            progress_callback(done, config.n_pipelines, store)
    report.failed_shards = [failures[i] for i in sorted(failures)]
    if telemetry and store.telemetry_sink is not None:
        # The fleet-level instrument snapshot (with folded-in shard
        # counters) persists into the merged store, mirroring the
        # sequential generator's end-of-run registry record.
        store.telemetry_sink.record_registry(get_registry())
    report.wall_seconds = perf_counter() - started
    if report.failed_shards:
        _log.warning("fleet_generated_partial",
                     merged=len(corpus.records),
                     missing=report.missing_pipelines,
                     failed_shards=len(report.failed_shards))
    _log.info("fleet_generated", pipelines=len(corpus.records),
              executions=store.num_executions, workers=len(shards),
              used_processes=used_processes,
              cache_hits=report.cache_hits,
              saved_cpu_hours=round(report.saved_cpu_hours, 3),
              wall_seconds=round(report.wall_seconds, 3))
    return corpus, report
