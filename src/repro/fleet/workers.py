"""Sharded parallel corpus generation.

The sequential generator simulates every pipeline in one loop, threading
a single random stream through all of them — correct, but neither
parallel nor partitionable. The fleet path derives an *independent* rng
per pipeline from ``(config.seed, pipeline index)`` via
``SeedSequence.spawn_key``, which makes each pipeline's simulation a
pure function of the config and its index. Pipelines can then be
partitioned into contiguous shards, simulated in worker processes into
private stores, and merged back (:mod:`repro.fleet.merge`) into a trace
that is *identical* for any worker count with the same seed — the
reproducible-pipeline discipline of Sugimura & Hartl applied to the
corpus generator itself.

Note the fleet path is intentionally a different (per-pipeline) seeding
scheme from ``generate_corpus``'s shared-stream scheme: ``--workers 1``
is the fleet's own sequential baseline, and existing seeds of the
legacy path are untouched.

Worker discipline:

* Workers install a **fresh metrics registry** before simulating — a
  forked child inherits the parent's counter values, and returning
  those would double-count. The parent folds each shard's instrument
  state (counters exactly; histograms via
  :meth:`~repro.obs.metrics.Histogram.merge_state`, exact aggregates
  plus merged reservoirs) back into its own registry, which is what
  keeps ``corpus.pipelines_generated`` and per-pipeline latency
  histograms correct under multi-process generation.
* Workers install a **fresh tracer** when the driver hands them a
  :class:`~repro.obs.tracing.TraceContext`: per-shard spans
  (``fleet.shard`` → ``fleet.shard.simulate`` → per-pipeline
  ``corpus.pipeline``) record in the worker, are journaled as
  ``shard-NNNN.spans.jsonl``, and the driver adopts them under its
  ``fleet.run`` span — one causally ordered cross-process timeline.
* Workers return a :class:`~repro.fleet.merge.StoreSnapshot`, not a
  ``MetadataStore`` — the store object is not picklable (its bound
  instruments hold locks). On the process-pool path the worker pickles
  the snapshot itself (``serialize=True``) so serialize time and byte
  size are measured where they happen; inline shards skip the
  round-trip entirely.

Crash safety (:mod:`repro.faults`): a worker that raises — or is
killed outright — loses only its own shard. The driver records a
:class:`ShardFailure` per lost shard, merges every completed shard
into a partial-but-valid store, and (when a journal directory is
given) persists each finished shard's payload so a later
``resume=True`` run re-simulates *only* the failed or missing shards
and converges on the exact store a fault-free run produces.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import json
import multiprocessing
import os
import pickle
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from ..corpus.config import CorpusConfig
from ..corpus.generator import (Corpus, PipelineRecord, ProgressCallback,
                                print_progress_every, sample_pipeline_plan,
                                _simulate_pipeline)
from ..faults.injector import WorkerCrashError, WorkerHangError
from ..faults.journal import (ShardJournal, config_fingerprint, folded_path,
                              spans_path, write_shard_payload)
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..faults.retry import RetryPolicy
from ..mlmd import MetadataStore
from ..obs.fleetwatch import DEFAULT_STALL_AFTER, ShardHeartbeat
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.tracing import TraceContext, Tracer, get_tracer, set_tracer, span
from .cache import ExecutionCache
from .merge import (StoreSnapshot, merge_snapshot, snapshot_row_count,
                    snapshot_store)

__all__ = [
    "FleetReport",
    "ShardFailure",
    "ShardResult",
    "ShardSpec",
    "generate_corpus_fleet",
    "pipeline_rng",
    "plan_shards",
    "run_shard",
]

_log = get_logger("fleet.workers")


def pipeline_rng(seed: int, index: int) -> np.random.Generator:
    """The derived random stream of pipeline ``index``.

    ``SeedSequence(entropy=seed, spawn_key=(index,))`` gives every
    pipeline a statistically independent stream that depends only on
    the corpus seed and the pipeline's global index — never on which
    shard or worker simulates it.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


@dataclass(frozen=True)
class ShardSpec:
    """One worker's contiguous slice of global pipeline indices."""

    shard_index: int
    start: int
    stop: int

    @property
    def n_pipelines(self) -> int:
        """Pipelines in this shard."""
        return self.stop - self.start


def plan_shards(n_pipelines: int, workers: int) -> list[ShardSpec]:
    """Partition ``range(n_pipelines)`` into contiguous balanced shards.

    Contiguity matters: merging contiguous shards in shard order
    reproduces the sequential (workers=1) id assignment exactly.
    """
    if n_pipelines < 1:
        raise ValueError("n_pipelines must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, n_pipelines)
    base, extra = divmod(n_pipelines, workers)
    shards = []
    start = 0
    for shard_index in range(workers):
        size = base + (1 if shard_index < extra else 0)
        shards.append(ShardSpec(shard_index=shard_index, start=start,
                                stop=start + size))
        start += size
    return shards


@dataclass
class ShardResult:
    """What one worker returns: the serialized shard plus its tallies.

    The shard's rows travel either as a live :class:`StoreSnapshot`
    (``snapshot_direct``, inline/resume paths) or as a pickle blob the
    worker serialized itself (``snapshot_blob``, process-pool path —
    measured as the ``serialize`` phase). :attr:`snapshot` presents one
    view over both.
    """

    spec: ShardSpec
    records: list[PipelineRecord]
    cache_hits: int = 0
    cache_misses: int = 0
    saved_cpu_hours: float = 0.0
    instruments: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    phase_seconds: dict = field(default_factory=dict)
    snapshot_bytes: int = 0
    finished_unix: float = 0.0
    spans: list[dict] = field(default_factory=list)
    trace_meta: dict = field(default_factory=dict)
    profile: dict = field(default_factory=dict)
    transfer_seconds: float = 0.0
    snapshot_blob: bytes | None = None
    snapshot_direct: StoreSnapshot | None = None

    @property
    def snapshot(self) -> StoreSnapshot:
        """The shard's rows, unpickling the blob on first access."""
        if self.snapshot_direct is None:
            self.snapshot_direct = pickle.loads(self.snapshot_blob)
            self.snapshot_blob = None
        return self.snapshot_direct


@dataclass(frozen=True)
class ShardFailure:
    """Structured record of one shard the fleet run could not complete."""

    shard_index: int
    start: int
    stop: int
    kind: str  # worker_crash | worker_killed | error
    message: str

    @property
    def n_pipelines(self) -> int:
        """Pipelines missing from the merged store because of this."""
        return self.stop - self.start


def _maybe_worker_fault(fault: FaultSpec | None, spec: ShardSpec,
                        completed: int) -> None:
    """Fire an injected worker fault once ``completed`` pipelines ran.

    Crash ``mode="kill"`` dies with ``os._exit``; a ``worker_hang``
    stops making progress (and heartbeating) forever — the shape of
    failure only a supervisor's stall detection can end. Both are
    worker-process-only: inline shards degrade to raising
    (:class:`WorkerCrashError` / :class:`WorkerHangError`) so a
    single-process run never takes the driver down — or hangs it.
    """
    if fault is None or completed != fault.after_pipelines:
        return
    in_worker = multiprocessing.parent_process() is not None
    if fault.kind is FaultKind.WORKER_HANG:
        if in_worker:
            while True:  # Alive but silent, until SIGTERM.
                time.sleep(3600)
        raise WorkerHangError(
            spec.shard_index,
            f"injected worker hang in shard {spec.shard_index} after "
            f"{completed} pipeline(s)")
    if fault.mode == "kill" and in_worker:
        os._exit(17)
    raise WorkerCrashError(
        spec.shard_index,
        f"injected worker crash in shard {spec.shard_index} after "
        f"{completed} pipeline(s)")


def run_shard(spec: ShardSpec, config: CorpusConfig,
              telemetry: bool = False,
              exec_cache: bool = False,
              fault_plan: FaultPlan | None = None,
              retry_policy: RetryPolicy | None = None,
              journal_dir: str | Path | None = None,
              allow_crash: bool = True,
              trace_ctx: TraceContext | None = None,
              serialize: bool = False,
              profile: bool = False,
              attempt: int = 1) -> ShardResult:
    """Simulate one shard into a private store (worker entry point).

    Runs in a worker process (or inline for workers=1): installs a
    fresh registry, simulates pipelines ``[spec.start, spec.stop)``
    each on its derived rng, and returns a picklable snapshot.

    With a ``fault_plan``, each pipeline gets its plan-derived fault
    injector (seeded by global index — shard-invariant), and a
    ``worker_crash`` rule targeting this shard kills the worker after
    its ``after_pipelines``-th pipeline (``allow_crash=False`` disarms
    it, e.g. on resume after the journal already saw the crash). With
    a ``journal_dir``, the finished shard's store and tallies are
    persisted there before returning — a crashed worker leaves no
    payload, only the driver-side failure entry — and the shard
    heartbeats progress into ``shard-NNNN.status.json`` for
    ``repro fleet-status``. With a ``trace_ctx``, a fresh worker
    tracer records the shard's spans for driver-side adoption; with
    ``serialize=True`` (the process-pool path) the snapshot is pickled
    here, under measurement, instead of implicitly by the pool. With
    ``profile=True``, a :class:`~repro.obs.profiling.StackSampler`
    samples this thread for the shard's whole lifetime; the folded
    stacks ship home in :attr:`ShardResult.profile` (and land in the
    journal as ``shard-NNNN.folded``) for coordinator-side merging.

    ``attempt`` is supervision provenance: attempt numbers > 1 (a
    supervisor's reschedule or hedge copy) tag the heartbeat worker
    name so ``fleet-status`` shows *which* attempt is beating. The
    simulation itself is attempt-invariant — every attempt derives the
    same per-pipeline rngs, which is what makes reschedules and hedge
    copies byte-identical.
    """
    started = perf_counter()
    worker_fault = None
    if fault_plan is not None and allow_crash:
        worker_fault = fault_plan.worker_fault(spec.shard_index)
    worker_name = f"shard-{spec.shard_index:04d}" \
        + (f"#a{attempt}" if attempt > 1 else "")
    heartbeat = None
    if journal_dir is not None:
        heartbeat = ShardHeartbeat(journal_dir, spec.shard_index,
                                   spec.n_pipelines, worker=worker_name)
    sampler = None
    if profile:
        from ..obs.profiling import StackSampler
        import threading

        sampler = StackSampler(
            target_thread_ids={threading.get_ident()}).start()
    previous_registry = set_registry(MetricsRegistry())
    worker_tracer = Tracer(context=trace_ctx) if trace_ctx else None
    previous_tracer = set_tracer(worker_tracer) if worker_tracer else None
    phases: dict[str, float] = {}
    completed = 0
    try:
        registry = get_registry()
        pipelines_done = registry.counter("corpus.pipelines_generated")
        store = MetadataStore()
        if telemetry:
            from ..obs.provenance import attach_sink
            attach_sink(store)
        records = []
        hits = misses = 0
        saved = 0.0
        if heartbeat is not None:
            heartbeat.beat("simulate", 0, force=True)
        with span("fleet.shard", shard_index=spec.shard_index,
                  start=spec.start, stop=spec.stop):
            sim_started = perf_counter()
            with span("fleet.shard.simulate",
                      pipelines=spec.n_pipelines):
                for offset, index in enumerate(range(spec.start,
                                                     spec.stop)):
                    _maybe_worker_fault(worker_fault, spec, offset)
                    rng = pipeline_rng(config.seed, index)
                    archetype, start_time = sample_pipeline_plan(
                        rng, config, index)
                    # Per-pipeline cache scope: pipelines never share
                    # artifacts, and pipeline-local hits are
                    # shard-assignment-invariant.
                    cache = ExecutionCache() if exec_cache else None
                    injector = (fault_plan.injector(index)
                                if fault_plan is not None else None)
                    with span("corpus.pipeline", index=index,
                              archetype=archetype.name):
                        with registry.timer("corpus.pipeline_seconds"):
                            record = _simulate_pipeline(
                                store, config, archetype, rng,
                                start_time, execution_cache=cache,
                                fault_injector=injector,
                                retry_policy=retry_policy)
                    pipelines_done.value += 1
                    completed = offset + 1
                    records.append(record)
                    if cache is not None:
                        hits += cache.hits
                        misses += cache.misses
                        saved += cache.saved_cpu_hours
                    if heartbeat is not None:
                        heartbeat.beat("simulate", offset + 1)
            phases["simulate"] = perf_counter() - sim_started
            # Instruments snapshot *here*: the serialize/journal store
            # reads below must not leak into the folded tallies
            # (resumed and fresh merges must fold identical numbers).
            instruments = registry.state_records()
            if heartbeat is not None:
                heartbeat.beat("serialize", spec.n_pipelines, force=True)
            ser_started = perf_counter()
            blob = None
            with span("fleet.shard.serialize") as ser_span:
                snapshot = snapshot_store(store)
                if serialize:
                    blob = pickle.dumps(snapshot,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    ser_span.set_attr("bytes", len(blob))
                ser_span.set_attr("rows", snapshot_row_count(snapshot))
            phases["serialize"] = perf_counter() - ser_started
            if journal_dir is not None:
                with span("fleet.shard.journal"):
                    write_shard_payload(
                        journal_dir, spec.shard_index, store,
                        dict(records=records, cache_hits=hits,
                             cache_misses=misses, saved_cpu_hours=saved,
                             instruments=instruments,
                             elapsed_seconds=perf_counter() - started,
                             phase_seconds=dict(phases),
                             snapshot_bytes=len(blob) if blob else 0,
                             finished_unix=time.time()))
        span_records: list[dict] = []
        trace_meta: dict = {}
        if worker_tracer is not None:
            span_records = worker_tracer.span_records()
            trace_meta = {"epoch": worker_tracer.epoch,
                          "worker": worker_name,
                          "trace_id": trace_ctx.trace_id}
            if journal_dir is not None:
                worker_tracer.export_jsonl(
                    spans_path(journal_dir, spec.shard_index))
        profile_counts: dict = {}
        if sampler is not None:
            profile_counts = sampler.stop()
            if journal_dir is not None:
                from ..obs.profiling import write_folded
                try:
                    write_folded(
                        folded_path(journal_dir, spec.shard_index),
                        profile_counts,
                        header={"worker": worker_name,
                                "samples": sampler.samples})
                except OSError:
                    # Like heartbeats, the profile is advisory — a
                    # full disk must not fail the shard.
                    pass
        if heartbeat is not None:
            heartbeat.beat("done", spec.n_pipelines, force=True)
        return ShardResult(
            spec=spec, records=records, cache_hits=hits,
            cache_misses=misses, saved_cpu_hours=saved,
            instruments=instruments,
            elapsed_seconds=perf_counter() - started,
            phase_seconds=phases,
            snapshot_bytes=len(blob) if blob else 0,
            finished_unix=time.time(),
            spans=span_records, trace_meta=trace_meta,
            profile=profile_counts,
            snapshot_blob=blob,
            snapshot_direct=None if blob is not None else snapshot)
    except Exception as exc:
        # Dying-breath heartbeat: a shard that raises reports *failed*
        # right now, so the driver (and fleet-status) never has to
        # wait out the stall threshold to learn a worker is gone.
        if heartbeat is not None:
            heartbeat.beat("failed", completed, force=True,
                           error=f"{type(exc).__name__}: {exc}")
        raise
    finally:
        if sampler is not None:
            sampler.stop()
        set_registry(previous_registry)
        if previous_tracer is not None:
            set_tracer(previous_tracer)


@dataclass
class FleetReport:
    """Roll-up of one fleet generation run."""

    workers: int
    shards: list[ShardSpec]
    pipelines: int
    exec_cache: bool
    cache_hits: int = 0
    cache_misses: int = 0
    saved_cpu_hours: float = 0.0
    wall_seconds: float = 0.0
    shard_seconds: list[float] = field(default_factory=list)
    used_processes: bool = False
    failed_shards: list[ShardFailure] = field(default_factory=list)
    resumed_shards: int = 0
    journal_dir: str = ""
    phase_seconds: dict = field(default_factory=dict)
    snapshot_bytes: int = 0
    merge_rows: int = 0
    spans_adopted: int = 0
    profile_folded: dict = field(default_factory=dict)
    supervised: bool = False
    #: :class:`~repro.fleet.supervisor.DegradationReport` of a
    #: supervised run (None when unsupervised or nothing ran).
    degradation: object | None = None

    @property
    def profile_samples(self) -> int:
        """Total stack samples across every shard's merged profile."""
        return sum(self.profile_folded.values())

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cacheable executions (0.0 when cache disabled)."""
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    @property
    def merge_rows_per_sec(self) -> float:
        """Merge re-insert throughput (0.0 before any merge)."""
        elapsed = self.phase_seconds.get("merge", 0.0)
        return self.merge_rows / elapsed if elapsed > 0 else 0.0

    def phase_breakdown(self) -> dict:
        """Coordinator wall-clock by phase, with the unattributed
        remainder as ``other`` — sums to ``wall_seconds``."""
        named = {k: v for k, v in self.phase_seconds.items()}
        named["other"] = max(
            0.0, self.wall_seconds - sum(self.phase_seconds.values()))
        return named

    @property
    def complete(self) -> bool:
        """Whether every shard made it into the merged store."""
        return not self.failed_shards

    @property
    def missing_pipelines(self) -> int:
        """Pipelines absent from the merged store (failed shards)."""
        return sum(f.n_pipelines for f in self.failed_shards)


@contextlib.contextmanager
def _timed_phase(phases: dict, name: str, **attrs):
    """Time one coordinator phase into ``phases`` under a fleet span."""
    with span(f"fleet.{name}", **attrs):
        phase_started = perf_counter()
        try:
            yield
        finally:
            phases[name] = (phases.get(name, 0.0)
                            + perf_counter() - phase_started)


def _load_shard_spans(journal_dir: Path,
                      shard_index: int) -> tuple[list[dict], dict]:
    """Reload a resumed shard's journaled spans (empty if never traced).

    The first line of ``shard-NNNN.spans.jsonl`` is the trace header
    (worker name + epoch); span lines follow. A torn or missing file
    degrades to no spans — resume never fails on telemetry.
    """
    path = spans_path(journal_dir, shard_index)
    spans: list[dict] = []
    meta: dict = {}
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return spans, meta
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        if record.get("kind") == "trace_header":
            meta = {"epoch": record.get("epoch"),
                    "worker": record.get("worker", ""),
                    "trace_id": record.get("trace_id", "")}
        elif record.get("kind") == "span":
            spans.append(record)
    return spans, meta


def generate_corpus_fleet(config: CorpusConfig | None = None,
                          workers: int = 1,
                          exec_cache: bool = False,
                          telemetry: bool = False,
                          progress: bool = False,
                          progress_callback: ProgressCallback | None = None,
                          in_process: bool = False,
                          fault_plan: FaultPlan | None = None,
                          retry_policy: RetryPolicy | None = None,
                          journal_dir: str | Path | None = None,
                          resume: bool = False,
                          profile: bool = False,
                          supervise: bool = False,
                          max_attempts: int = 3,
                          stall_after: float | None = None,
                          hedge_after: float | None = None,
                          fault_budget: int | None = None
                          ) -> tuple[Corpus, FleetReport]:
    """Generate a corpus by sharded (optionally parallel) simulation.

    Deterministic given ``config.seed`` for *any* ``workers`` value:
    the merged store is identical (same ids, same rows) whether one
    worker or eight simulated it. With ``exec_cache=True`` every runner
    carries a content-addressed :class:`ExecutionCache` and redundant
    re-executions are replayed as ``CACHED`` executions.

    Args:
        config: Corpus configuration (default ``CorpusConfig()``).
        workers: Shard count; ``> 1`` simulates shards in worker
            processes (falling back to in-process on pool failure).
        exec_cache: Enable the content-addressed execution cache.
        telemetry: Persist provenance telemetry rows, as in
            :func:`repro.corpus.generate_corpus`.
        progress: Print the classic progress line per merged shard.
        progress_callback: Custom progress hook ``(done, total, store)``,
            called after each shard is merged.
        in_process: Force inline shard execution even for workers > 1
            (deterministic tests without process spawn overhead).
        fault_plan: Seeded :class:`~repro.faults.FaultPlan`; operator
            faults flow into every runner, ``worker_crash`` rules kill
            their target shard's worker.
        retry_policy: :class:`~repro.faults.RetryPolicy` honored by
            every runner (each attempt its own execution).
        journal_dir: Directory for the per-shard journal; enables
            crash-safe resume (see :mod:`repro.faults.journal`).
        resume: Reuse completed shards from ``journal_dir`` and
            re-simulate only failed/missing ones. Requires a journal
            written by a run with the identical config and plan.
        profile: Run a :class:`~repro.obs.profiling.StackSampler` in
            every worker; per-shard folded stacks are merged into
            ``report.profile_folded`` (and journaled per shard). A
            resumed shard contributes its journaled profile, if any —
            the flag is not part of the journal fingerprint.
        supervise: Run shards under the in-run
            :class:`~repro.fleet.supervisor.FleetSupervisor` —
            crashed / hung / straggling workers are rescheduled,
            hedged, or quarantined *during* the run instead of
            aborting it. Requires a ``journal_dir``.
        max_attempts: Supervised attempts per shard before it is
            quarantined for this run.
        stall_after: Seconds without a heartbeat before a supervised
            worker counts as hung (also recorded in the journal
            manifest so ``fleet-status`` uses the same threshold).
            ``None`` uses :data:`~repro.obs.fleetwatch.DEFAULT_STALL_AFTER`.
        hedge_after: Straggler factor: hedge a running shard once its
            attempt is older than ``hedge_after`` × the median
            completed-attempt duration. ``None`` disables hedging.
        fault_budget: Cap on total supervised recovery attempts
            (reschedules + hedges); exhaustion quarantines remaining
            failures — fail-fast on systemic breakage. ``None`` is
            unlimited.

    Returns:
        The merged :class:`Corpus` plus a :class:`FleetReport`. A run
        with failed shards still returns a valid (partial) corpus;
        inspect ``report.failed_shards`` / ``report.complete`` (and
        ``report.degradation`` when supervised).
    """
    config = config or CorpusConfig()
    if resume and journal_dir is None:
        raise ValueError("resume=True requires a journal_dir")
    if supervise and journal_dir is None:
        raise ValueError("supervise=True requires a journal_dir "
                         "(heartbeats and attempt provenance live there)")
    started = perf_counter()
    tracer = get_tracer()
    registry = get_registry()
    phases: dict[str, float] = {}
    trace_id = uuid.uuid4().hex[:16] if tracer.enabled else ""
    with span("fleet.run", pipelines=config.n_pipelines,
              workers=workers, trace_id=trace_id) as run_span:
        if progress_callback is None and progress:
            # Fleet progress is shard-granular, so report on every merge.
            progress_callback = print_progress_every(1)

        results: dict[int, ShardResult] = {}
        failures: dict[int, ShardFailure] = {}
        to_run: list[ShardSpec] = []
        resumed = 0
        with _timed_phase(phases, "plan"):
            shards = plan_shards(config.n_pipelines, workers)
            journal = None
            if journal_dir is not None:
                fingerprint = config_fingerprint(
                    config, shards, exec_cache=exec_cache,
                    telemetry=telemetry, fault_plan=fault_plan,
                    retry_policy=retry_policy)
                journal = ShardJournal(journal_dir, fingerprint)
                journal.open(shards, resume=resume, meta={
                    "stall_after": stall_after
                    if stall_after is not None else DEFAULT_STALL_AFTER,
                    "supervised": bool(supervise)})
            _log.info("fleet_generation_started",
                      pipelines=config.n_pipelines, workers=len(shards),
                      seed=config.seed, exec_cache=exec_cache,
                      resume=resume,
                      faults=len(fault_plan.specs) if fault_plan else 0)
            for spec in shards:
                if journal is not None and resume \
                        and journal.is_done(spec.shard_index):
                    shard_store, extras = journal.load_payload(
                        spec.shard_index)
                    result = ShardResult(
                        spec=spec,
                        snapshot_direct=snapshot_store(shard_store),
                        **extras)
                    result.spans, result.trace_meta = _load_shard_spans(
                        journal.directory, spec.shard_index)
                    if profile:
                        from ..obs.profiling import read_folded
                        result.profile = read_folded(folded_path(
                            journal.directory, spec.shard_index))
                    results[spec.shard_index] = result
                    resumed += 1
                else:
                    to_run.append(spec)
            if resumed:
                _log.info("fleet_shards_resumed", resumed=resumed,
                          re_running=len(to_run))

        # An injected crash fires once per journal: a shard whose entry
        # already counted a crash runs disarmed on resume.
        allow_crash = {
            spec.shard_index:
                journal is None
                or journal.entry(spec.shard_index).crashes == 0
            for spec in to_run
        }
        payload_dir = journal.directory if journal is not None else None

        def trace_ctx_for(spec: ShardSpec,
                          attempt: int = 1) -> TraceContext | None:
            if not tracer.enabled:
                return None
            worker = f"shard-{spec.shard_index:04d}" \
                + (f"#a{attempt}" if attempt > 1 else "")
            return TraceContext(trace_id=trace_id,
                                root_span_id=run_span.span_id,
                                worker=worker)

        def record_done(spec: ShardSpec, result: ShardResult) -> None:
            results[spec.shard_index] = result
            if journal is not None:
                journal.record_done(spec.shard_index)

        def record_failure(spec: ShardSpec, kind: str, message: str,
                           crashed: bool = False) -> None:
            failures[spec.shard_index] = ShardFailure(
                spec.shard_index, spec.start, spec.stop, kind, message)
            if journal is not None:
                journal.record_failure(spec.shard_index, kind, message,
                                       crashed=crashed)
            _log.warning("fleet_shard_failed", shard=spec.shard_index,
                         kind=kind, reason=message)

        def run_inline(spec: ShardSpec) -> None:
            try:
                record_done(spec, run_shard(
                    spec, config, telemetry, exec_cache, fault_plan,
                    retry_policy, payload_dir,
                    allow_crash[spec.shard_index],
                    trace_ctx=trace_ctx_for(spec), profile=profile))
            except WorkerCrashError as exc:
                record_failure(spec, "worker_crash", str(exc),
                               crashed=True)
            except Exception as exc:  # A worker bug loses one shard only.
                record_failure(spec, "error",
                               f"{type(exc).__name__}: {exc}")

        used_processes = False
        degradation = None
        with _timed_phase(phases, "simulate", shards=len(to_run)):
            if to_run and supervise:
                from .supervisor import FleetSupervisor, SupervisorPolicy

                supervisor = FleetSupervisor(
                    config, journal,
                    SupervisorPolicy(
                        max_attempts=max_attempts,
                        stall_after=stall_after
                        if stall_after is not None else DEFAULT_STALL_AFTER,
                        hedge_after=hedge_after,
                        fault_budget=fault_budget),
                    telemetry=telemetry, exec_cache=exec_cache,
                    fault_plan=fault_plan, retry_policy=retry_policy,
                    trace_ctx_for=trace_ctx_for, profile=profile,
                    in_process=in_process)
                sup_results, sup_failures, degradation = supervisor.run(
                    to_run, allow_crash,
                    planned_pipelines=config.n_pipelines,
                    planned_shards=len(shards),
                    pre_merged_pipelines=sum(
                        r.spec.n_pipelines for r in results.values()))
                results.update(sup_results)
                failures.update(sup_failures)
                used_processes = supervisor.used_processes
            elif to_run and (len(shards) == 1 or in_process
                             or len(to_run) == 1):
                for spec in to_run:
                    run_inline(spec)
            elif to_run:
                pool_casualties: list[ShardSpec] = []
                try:
                    with concurrent.futures.ProcessPoolExecutor(
                            max_workers=len(to_run)) as pool:
                        futures = {
                            pool.submit(
                                run_shard, spec, config, telemetry,
                                exec_cache, fault_plan, retry_policy,
                                payload_dir,
                                allow_crash[spec.shard_index],
                                trace_ctx=trace_ctx_for(spec),
                                serialize=True, profile=profile): spec
                            for spec in to_run
                        }
                        for future in concurrent.futures.as_completed(
                                futures):
                            spec = futures[future]
                            try:
                                result = future.result()
                                # Receipt time minus the worker's return
                                # stamp ≈ time the shard spent queued +
                                # crossing the process boundary.
                                result.transfer_seconds = max(
                                    0.0,
                                    time.time() - result.finished_unix)
                                record_done(spec, result)
                                used_processes = True
                            except WorkerCrashError as exc:
                                record_failure(spec, "worker_crash",
                                               str(exc), crashed=True)
                                used_processes = True
                            except (concurrent.futures.process
                                    .BrokenProcessPool):
                                pool_casualties.append(spec)
                            except Exception as exc:
                                record_failure(
                                    spec, "error",
                                    f"{type(exc).__name__}: {exc}")
                                used_processes = True
                except (OSError, pickle.PicklingError,
                        concurrent.futures.process
                        .BrokenProcessPool) as exc:
                    _log.warning("fleet_pool_unavailable",
                                 reason=type(exc).__name__,
                                 fallback="in_process")
                    pool_casualties = [
                        spec for spec in to_run
                        if spec.shard_index not in results
                        and spec.shard_index not in failures]
                # A broken pool can't say which worker died. A shard
                # whose plan called for a kill-mode crash is the culprit
                # — record it as crashed; the rest are innocent victims
                # of the shared pool (or the sandbox denied processes
                # entirely) and re-run inline.
                for spec in pool_casualties:
                    crash = (fault_plan.worker_crash(spec.shard_index)
                             if fault_plan is not None else None)
                    if crash is not None and crash.mode == "kill" \
                            and allow_crash[spec.shard_index]:
                        used_processes = True
                        record_failure(
                            spec, "worker_killed",
                            f"worker for shard {spec.shard_index} "
                            f"killed after {crash.after_pipelines} "
                            "pipeline(s)", crashed=True)
                    else:
                        run_inline(spec)

        store = MetadataStore()
        if telemetry:
            from ..obs.provenance import attach_sink
            attach_sink(store)
        corpus = Corpus(store=store, config=config)
        report = FleetReport(workers=len(shards), shards=shards,
                             pipelines=config.n_pipelines,
                             exec_cache=exec_cache,
                             used_processes=used_processes,
                             resumed_shards=resumed,
                             supervised=supervise,
                             degradation=degradation,
                             journal_dir=str(journal.directory)
                             if journal is not None else "")
        done = 0
        # Merge in shard order: contiguous shards re-inserted in order
        # give the same global id assignment as a single-worker run.
        # Failed shards are skipped — the merged store stays valid,
        # just partial.
        with _timed_phase(phases, "merge"):
            for spec in shards:
                result = results.get(spec.shard_index)
                if result is None:
                    continue
                report.merge_rows += snapshot_row_count(result.snapshot)
                maps = merge_snapshot(store, result.snapshot)
                for record in result.records:
                    record.context_id = maps.context_ids[
                        record.context_id]
                    corpus.records.append(record)
                registry.fold(result.instruments)
                _record_shard_dataplane(registry, result)
                if tracer.enabled:
                    if result.spans:
                        report.spans_adopted += tracer.adopt_spans(
                            result.spans,
                            epoch=result.trace_meta.get("epoch"),
                            default_parent_id=run_span.span_id,
                            worker=result.trace_meta.get("worker", ""))
                    else:
                        _log.warning("fleet_shard_telemetry_missing",
                                     shard=spec.shard_index,
                                     reason="no spans returned")
                if result.profile:
                    # Folded-stack counts are additive: the merged
                    # profile is one fleet-wide flamegraph.
                    from ..obs.profiling import merge_folded
                    report.profile_folded = merge_folded(
                        report.profile_folded, result.profile)
                report.cache_hits += result.cache_hits
                report.cache_misses += result.cache_misses
                report.saved_cpu_hours += result.saved_cpu_hours
                report.shard_seconds.append(result.elapsed_seconds)
                report.snapshot_bytes += result.snapshot_bytes
                done += result.spec.n_pipelines
                if progress_callback is not None:
                    progress_callback(done, config.n_pipelines, store)

        with _timed_phase(phases, "finalize"):
            report.failed_shards = [failures[i] for i in sorted(failures)]
            if telemetry and store.telemetry_sink is not None:
                # The fleet-level instrument snapshot (with folded-in
                # shard tallies) persists into the merged store,
                # mirroring the sequential generator's end-of-run
                # registry record.
                store.telemetry_sink.record_registry(registry)

    report.phase_seconds = phases
    report.wall_seconds = perf_counter() - started
    for name, seconds in report.phase_breakdown().items():
        registry.gauge("fleet.phase_seconds", phase=name).set(seconds)
    if report.merge_rows:
        registry.gauge("fleet.merge.rows_per_sec").set(
            report.merge_rows_per_sec)
    if report.failed_shards:
        _log.warning("fleet_generated_partial",
                     merged=len(corpus.records),
                     missing=report.missing_pipelines,
                     failed_shards=len(report.failed_shards))
    _log.info("fleet_generated", pipelines=len(corpus.records),
              executions=store.num_executions, workers=len(shards),
              used_processes=used_processes,
              cache_hits=report.cache_hits,
              saved_cpu_hours=round(report.saved_cpu_hours, 3),
              wall_seconds=round(report.wall_seconds, 3))
    return corpus, report


def _record_shard_dataplane(registry: MetricsRegistry,
                            result: ShardResult) -> None:
    """Record one shard's data-plane costs into the fleet registry.

    These are coordinator-side instruments (the worker's own registry
    was already snapshotted before serialization started), so the fleet
    timeline carries serialize/transfer/snapshot-size distributions per
    shard without double-counting worker-side instruments.

    Every shard records all three histograms so the instrument set —
    and therefore the telemetry rows a sink persists — is invariant to
    worker count: inline shards honestly observe 0 bytes serialized and
    a 0-second transfer (the snapshot is handed over in-process).
    """
    serialize_seconds = result.phase_seconds.get("serialize")
    if serialize_seconds is not None:
        registry.histogram("fleet.shard.serialize_seconds").record(
            serialize_seconds)
    registry.histogram("fleet.shard.snapshot_bytes").record(
        result.snapshot_bytes)
    registry.histogram("fleet.shard.transfer_seconds").record(
        result.transfer_seconds or 0.0)
