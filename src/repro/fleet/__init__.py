"""Sharded parallel corpus execution with a content-addressed cache.

The subsystem has three parts, surfaced via
``repro generate --workers N --exec-cache``:

* :mod:`repro.fleet.workers` — partition the corpus into per-worker
  shards with derived per-pipeline seeds, simulate each shard in its
  own process and store, and return serialized shards.
* :mod:`repro.fleet.merge` — fold shard stores into one
  :class:`~repro.mlmd.MetadataStore` with full id remapping, preserving
  referential integrity for every downstream analysis.
* :mod:`repro.fleet.cache` — a content-addressed execution cache that
  turns the paper's graphlet-similarity observation (Table 1 /
  Section 5) into replayed ``CACHED`` executions with measured saved
  cpu-hours.

Fleet runs are crash-safe: with a shard journal
(:mod:`repro.faults.journal`) a killed or crashing worker degrades the
run to a partial-but-valid merged store plus structured
:class:`ShardFailure` records, and ``resume=True`` re-simulates only
the failed shards. With ``supervise=True`` the
:class:`~repro.fleet.supervisor.FleetSupervisor` goes further and
recovers *in-run*: crashed or hung workers are rescheduled, stragglers
hedged, and poison shards quarantined behind a structured
:class:`~repro.fleet.supervisor.DegradationReport`.
"""

from .cache import CacheEntry, CachedOutput, ExecutionCache
from .merge import MergeMaps, StoreSnapshot, merge_snapshot, snapshot_store
from .supervisor import (
    DegradationReport,
    FleetSupervisor,
    QuarantinedShard,
    SupervisorPolicy,
    render_degradation,
)
from .workers import (
    FleetReport,
    ShardFailure,
    ShardResult,
    ShardSpec,
    generate_corpus_fleet,
    pipeline_rng,
    plan_shards,
    run_shard,
)

__all__ = [
    "CacheEntry",
    "CachedOutput",
    "DegradationReport",
    "ExecutionCache",
    "FleetReport",
    "FleetSupervisor",
    "MergeMaps",
    "QuarantinedShard",
    "ShardFailure",
    "ShardResult",
    "ShardSpec",
    "StoreSnapshot",
    "SupervisorPolicy",
    "generate_corpus_fleet",
    "merge_snapshot",
    "pipeline_rng",
    "plan_shards",
    "render_degradation",
    "run_shard",
    "snapshot_store",
]
