"""Content-addressed execution cache (TFX-style cached executions).

The paper's Table 1 finds consecutive model graphlets nearly identical
and names redundant re-execution as the key optimization opportunity
(Section 5). This module makes that opportunity expressible in the
runtime: a cache keyed on *(operator type, operator params, input
artifact fingerprints)* lets :class:`~repro.tfx.runtime.PipelineRunner`
replay a previous execution's outputs instead of re-running the
operator, recording the execution with ``ExecutionState.CACHED`` and
crediting the avoided cost as ``saved_cpu_hours``.

Key definition (see DESIGN.md "Fleet execution"):

* An artifact's **fingerprint** is a digest of its type name and its
  content properties. The ``reused`` marker the cache itself stamps on
  replayed outputs is excluded, so a replayed artifact fingerprints the
  same as the original it mirrors. Store ids, creation times, and URIs
  are *not* fingerprinted — identity is content, not placement.
* An execution's **key** digests the operator's ``name``, its
  ``cache_params()``, and the per-input-key fingerprint lists in input
  order. Only operators declaring ``cache_safe = True`` get keys:
  everything hint-driven, randomized, or dependent on mutable
  warm-start / pipeline state stays uncacheable by construction.

The cache is scoped per pipeline (one instance per runner): pipelines
never share artifacts, and per-pipeline scope keeps sharded generation
(:mod:`repro.fleet.workers`) byte-identical to sequential generation —
a fleet-global cache would make hit patterns depend on scheduling.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..mlmd.types import Artifact
from ..obs.metrics import get_registry

__all__ = ["CacheEntry", "CachedOutput", "ExecutionCache"]

#: Output-artifact property stamped on cache-replayed artifacts.
REUSED_PROPERTY = "reused"


@dataclass(frozen=True)
class CachedOutput:
    """One output artifact template stored in a cache entry."""

    key: str
    type_name: str
    properties: tuple[tuple[str, str], ...]

    def materialize(self) -> dict:
        """A fresh properties dict for a replayed artifact."""
        return {name: json.loads(value) for name, value in self.properties}


@dataclass
class CacheEntry:
    """What a hit replays: outputs, gate outcome, and the cost shape."""

    outputs: tuple[CachedOutput, ...]
    blocking: bool
    cost_scale: float


@dataclass
class ExecutionCache:
    """Per-pipeline content-addressed cache over completed executions.

    ``misses`` counts only *cacheable* executions (cache-safe operator,
    no entry yet), so ``hit_rate`` is the fraction of cacheable work
    served from cache — the number the paper's redundancy claim is
    about. ``saved_cpu_hours`` accumulates the cost each hit avoided,
    reconciling exactly against an uncached run of the same seed.
    """

    hits: int = 0
    misses: int = 0
    saved_cpu_hours: float = 0.0
    _entries: dict[str, CacheEntry] = field(default_factory=dict)
    _fingerprints: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        registry = get_registry()
        self._m_hits = registry.counter("fleet.cache.hits")
        self._m_misses = registry.counter("fleet.cache.misses")
        self._m_saved = registry.counter("fleet.cache.saved_cpu_hours")

    # ------------------------------------------------------------- keys

    def fingerprint(self, artifact: Artifact) -> str:
        """Content digest of one artifact (memoized by store id)."""
        cached = self._fingerprints.get(artifact.id)
        if cached is not None:
            return cached
        content = {key: value for key, value in artifact.properties.items()
                   if key != REUSED_PROPERTY}
        digest = hashlib.sha256(json.dumps(
            [artifact.type_name, content],
            sort_keys=True).encode()).hexdigest()
        if artifact.id != -1:
            self._fingerprints[artifact.id] = digest
        return digest

    def key(self, operator, inputs: dict[str, list[Artifact]]) -> str | None:
        """The cache key for one resolved execution, or None.

        ``None`` means "not cacheable": the operator has not declared
        itself a pure function of its inputs.
        """
        if not operator.cache_safe:
            return None
        payload = [operator.name, repr(operator.cache_params()),
                   [[input_key, [self.fingerprint(a) for a in artifacts]]
                    for input_key, artifacts in sorted(inputs.items())]]
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    # ------------------------------------------------------------ access

    def lookup(self, key: str) -> CacheEntry | None:
        """Return the entry for ``key``, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._m_misses.value += 1
        else:
            self.hits += 1
            self._m_hits.value += 1
        return entry

    def credit_saved(self, cpu_hours: float) -> None:
        """Record the compute a hit avoided."""
        self.saved_cpu_hours += float(cpu_hours)
        self._m_saved.value += float(cpu_hours)

    def store(self, key: str, result) -> None:
        """Store a COMPLETE execution's result under ``key``.

        Output payloads are not cached — on the simulation path they
        are dropped after every run anyway, and a replayed artifact's
        consumers only read properties.
        """
        outputs = []
        for output_key, output_list in result.outputs.items():
            for output in output_list:
                outputs.append(CachedOutput(
                    key=output_key,
                    type_name=output.type_name,
                    properties=tuple(sorted(
                        (name, json.dumps(value)) for name, value
                        in output.properties.items()))))
        self._entries[key] = CacheEntry(
            outputs=tuple(outputs), blocking=result.blocking,
            cost_scale=result.cost_scale)

    @property
    def hit_rate(self) -> float:
        """Hits over cacheable executions (0.0 when none were seen)."""
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0
