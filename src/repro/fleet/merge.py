"""Merge shard stores into one MetadataStore with id remapping.

Worker processes simulate disjoint pipeline shards into private stores
(:mod:`repro.fleet.workers`); this module folds those shards back into
a single trace. Every node is re-inserted through the destination
store's ``put_*`` API — ids are reassigned by the destination and every
cross-reference (events, attributions, associations, telemetry join
keys) is remapped through the resulting id maps, mirroring the
remapping discipline of :func:`repro.mlmd.sqlite_store.load_store`.
Referential integrity is therefore enforced *by the store itself* while
merging: a dangling edge raises instead of silently corrupting the
trace, so ``Corpus.from_store``, graphlet segmentation, and
``repro diagnose`` work on merged stores unchanged.

Determinism: snapshots list nodes in id (= insertion) order, and the
fleet merges shards in shard order. Pipelines insert their rows
contiguously, so merging contiguous shards in order reproduces the
exact id assignment of a single-worker run — the basis of the
workers=1 vs workers=N equivalence guarantee.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..mlmd.abstract import AbstractStore
from ..mlmd.store import MetadataStore
from ..mlmd.types import Artifact, Context, Event, Execution, TelemetryRecord

__all__ = ["MergeMaps", "StoreSnapshot", "merge_snapshot",
           "snapshot_row_count", "snapshot_store"]

#: Artifact properties whose value is an artifact id (set by operators:
#: SchemaGen's source_statistics, Pusher's model_artifact). Any merge
#: or lenient reload must remap these alongside the structural edges.
ID_VALUED_ARTIFACT_PROPERTIES = ("source_statistics", "model_artifact")


@dataclass
class StoreSnapshot:
    """A store's contents as plain picklable rows (no locks, no sink).

    ``MetadataStore`` itself cannot cross a process boundary (its bound
    metric instruments hold locks); a snapshot carries only dataclass
    rows plus the membership pairs needed to rebuild context joins.
    """

    artifacts: list[Artifact] = field(default_factory=list)
    executions: list[Execution] = field(default_factory=list)
    contexts: list[Context] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    attributions: list[tuple[int, int]] = field(default_factory=list)
    associations: list[tuple[int, int]] = field(default_factory=list)
    telemetry: list[TelemetryRecord] = field(default_factory=list)


def snapshot_row_count(snapshot: StoreSnapshot) -> int:
    """Total rows a merge of ``snapshot`` re-inserts (the denominator
    of the fleet's merge rows/sec phase metric)."""
    return (len(snapshot.artifacts) + len(snapshot.executions)
            + len(snapshot.contexts) + len(snapshot.events)
            + len(snapshot.attributions) + len(snapshot.associations)
            + len(snapshot.telemetry))


@dataclass
class MergeMaps:
    """Shard-local id → merged id, per node kind."""

    artifact_ids: dict[int, int] = field(default_factory=dict)
    execution_ids: dict[int, int] = field(default_factory=dict)
    context_ids: dict[int, int] = field(default_factory=dict)


def snapshot_store(store: MetadataStore) -> StoreSnapshot:
    """Capture a store's rows for transport to another process.

    Node lists come back in id order (`dict` preserves insertion order
    and ids are assigned sequentially), which is what makes the merge
    order-deterministic.
    """
    attributions = []
    associations = []
    for context in store.get_contexts():
        attributions.extend(
            (context.id, artifact.id)
            for artifact in store.get_artifacts_by_context(context.id))
        associations.extend(
            (context.id, execution.id)
            for execution in store.get_executions_by_context(context.id))
    return StoreSnapshot(
        artifacts=store.get_artifacts(),
        executions=store.get_executions(),
        contexts=store.get_contexts(),
        events=store.get_events(),
        attributions=attributions,
        associations=associations,
        telemetry=store.get_telemetry())


def merge_snapshot(dest: AbstractStore,
                   snapshot: StoreSnapshot) -> MergeMaps:
    """Fold one shard snapshot into ``dest``, remapping every id.

    Rows are re-inserted in the snapshot's (insertion) order; the
    destination assigns fresh ids and the returned maps let callers
    translate shard-local references (e.g. a ``PipelineRecord``'s
    context id) into the merged trace.
    """
    maps = MergeMaps()
    for context in snapshot.contexts:
        maps.context_ids[context.id] = dest.put_context(
            dataclasses.replace(context, id=-1))
    for artifact in snapshot.artifacts:
        properties = artifact.properties
        if any(key in properties for key in ID_VALUED_ARTIFACT_PROPERTIES):
            # The referenced artifact (an operator input) always has a
            # smaller id than its consumer's output, so it is mapped by
            # the time this row is reached.
            properties = dict(properties)
            for key in ID_VALUED_ARTIFACT_PROPERTIES:
                if key in properties:
                    properties[key] = maps.artifact_ids[
                        int(properties[key])]
        maps.artifact_ids[artifact.id] = dest.put_artifact(
            dataclasses.replace(artifact, id=-1, properties=properties))
    for execution in snapshot.executions:
        properties = execution.properties
        if "retry_of" in properties:
            # retry_of is an id-valued *property* (retry provenance,
            # repro.faults): the prior attempt always precedes this row
            # in snapshot order, so its merged id is already mapped.
            properties = dict(properties)
            properties["retry_of"] = maps.execution_ids[
                int(properties["retry_of"])]
        maps.execution_ids[execution.id] = dest.put_execution(
            dataclasses.replace(execution, id=-1, properties=properties))
    for event in snapshot.events:
        dest.put_event(Event(
            artifact_id=maps.artifact_ids[event.artifact_id],
            execution_id=maps.execution_ids[event.execution_id],
            type=event.type, time=event.time))
    for context_id, artifact_id in snapshot.attributions:
        dest.put_attribution(maps.context_ids[context_id],
                             maps.artifact_ids[artifact_id])
    for context_id, execution_id in snapshot.associations:
        dest.put_association(maps.context_ids[context_id],
                             maps.execution_ids[execution_id])
    for record in snapshot.telemetry:
        dest.put_telemetry(dataclasses.replace(
            record, id=-1,
            execution_id=None if record.execution_id is None
            else maps.execution_ids[record.execution_id],
            context_id=None if record.context_id is None
            else maps.context_ids[record.context_id]))
    return maps
