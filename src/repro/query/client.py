"""The MetadataClient facade: one indexed read path for every analysis.

Every analysis in the paper — graphlet segmentation, lineage walks,
pipeline-level statistics, diagnosis, waste features — is a read over
the metadata store. :class:`MetadataClient` is the versioned query API
those layers consume: it builds an :class:`~repro.query.indexes.IndexSet`
over any :class:`~repro.mlmd.abstract.AbstractStore` backend (in-memory
or sqlite), subscribes to the store's mutation notifications so the
indexes stay current incrementally, and exposes

* the full store *read* protocol (``get_artifact`` … ``num_telemetry``)
  so a client can be passed anywhere a store is read from — including
  ``Graphlet.store`` — with every lookup served from the indexes;
* typed filtered reads (:meth:`artifacts` / :meth:`executions` /
  :meth:`contexts`) replacing the deprecated store-side type scans;
* batched :meth:`get_many` / :meth:`neighbors_many` calls;
* an LRU-cached graphlet segmenter (:meth:`segment_pipeline`) keyed on
  ``(context_id, index version)`` so repeated segmentation of an
  unchanged pipeline is a dictionary hit.

Use :func:`as_client` at API boundaries: it passes clients through
untouched and lazily attaches (and caches) a client on a raw store, so
call sites accept either.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..mlmd.abstract import AbstractStore
from ..mlmd.errors import InvalidQueryError, NotFoundError
from ..mlmd.types import (
    Artifact,
    Context,
    Event,
    Execution,
    TelemetryRecord,
)
from .indexes import IndexSet

if TYPE_CHECKING:
    from ..graphlets.graphlet import Graphlet

#: Attribute under which :func:`as_client` caches the default client on
#: a raw store instance.
_CLIENT_ATTR = "_repro_default_client"

#: Valid ``kind`` arguments of :meth:`MetadataClient.get_many`.
NODE_KINDS = ("artifact", "execution", "context")

#: Valid ``relation`` arguments of :meth:`MetadataClient.neighbors_many`.
RELATIONS = ("inputs", "outputs", "consumers", "producers")


class MetadataClient:
    """Indexed, read-only query facade over one metadata store.

    Reads never touch the backend after the initial index build (the
    sqlite backend is scanned exactly once); writes keep flowing through
    the store's ``put_*`` API and reach the client via its mutation
    subscription.
    """

    #: Version of the query API surface. Bumped on breaking changes;
    #: tools/api_snapshot.py guards the surface itself.
    API_VERSION = 1

    def __init__(self, store: AbstractStore, *,
                 segment_cache_size: int = 64) -> None:
        self.store = store
        self.indexes = IndexSet()
        self._segment_cache: OrderedDict[tuple[int, int], tuple] = \
            OrderedDict()
        self._segment_cache_size = segment_cache_size
        self.segment_cache_hits = 0
        self.segment_cache_misses = 0
        store.subscribe(self.indexes.apply)
        self.indexes.build(store)

    def close(self) -> None:
        """Detach from the store (stop receiving mutations)."""
        self.store.unsubscribe(self.indexes.apply)

    @property
    def version(self) -> int:
        """Current index version (monotonic; bumps on every mutation)."""
        return self.indexes.version

    # ------------------------------------------------- store read protocol

    def get_artifact(self, artifact_id: int) -> Artifact:
        """Indexed point lookup of one artifact."""
        return self.indexes.artifact(artifact_id)

    def get_execution(self, execution_id: int) -> Execution:
        """Indexed point lookup of one execution."""
        return self.indexes.execution(execution_id)

    def get_context(self, context_id: int) -> Context:
        """Indexed point lookup of one context."""
        return self.indexes.context(context_id)

    def get_artifacts(self, type_name: str | None = None) -> list[Artifact]:
        """All artifacts, optionally filtered by type — indexed."""
        return self.artifacts(type_name=type_name)

    def get_executions(self,
                       type_name: str | None = None) -> list[Execution]:
        """All executions, optionally filtered by type — indexed."""
        return self.executions(type_name=type_name)

    def get_contexts(self, type_name: str | None = None) -> list[Context]:
        """All contexts, optionally filtered by type — indexed."""
        return self.contexts(type_name=type_name)

    def get_artifact_by_name(self, type_name: str, name: str) -> Artifact:
        """Indexed lookup by the unique (type, name) pair."""
        artifact_id = self.indexes.named.get(("artifact", type_name, name))
        if artifact_id is None:
            raise NotFoundError(f"artifact {type_name}/{name} not found")
        return self.indexes.artifacts[artifact_id]

    def get_events(self) -> list[Event]:
        """All events (the raw trace edges) in insertion order."""
        return list(self.indexes.events)

    def get_input_artifact_ids(self, execution_id: int) -> list[int]:
        """Artifact ids consumed by an execution (event order)."""
        return list(self.indexes.inputs_of.get(execution_id, ()))

    def get_output_artifact_ids(self, execution_id: int) -> list[int]:
        """Artifact ids produced by an execution (event order)."""
        return list(self.indexes.outputs_of.get(execution_id, ()))

    def get_input_artifacts(self, execution_id: int) -> list[Artifact]:
        """Artifacts consumed by an execution."""
        return [self.indexes.artifacts[i]
                for i in self.indexes.inputs_of.get(execution_id, ())]

    def get_output_artifacts(self, execution_id: int) -> list[Artifact]:
        """Artifacts produced by an execution."""
        return [self.indexes.artifacts[i]
                for i in self.indexes.outputs_of.get(execution_id, ())]

    def get_consumer_execution_ids(self, artifact_id: int) -> list[int]:
        """Execution ids that consume an artifact."""
        return list(self.indexes.consumers_of.get(artifact_id, ()))

    def get_producer_execution_ids(self, artifact_id: int) -> list[int]:
        """Execution ids that produced an artifact."""
        return list(self.indexes.producers_of.get(artifact_id, ()))

    def get_artifacts_by_id(self,
                            artifact_ids: Sequence[int]) -> list[Artifact]:
        """Batched artifact lookup."""
        return self.get_many("artifact", artifact_ids)

    def get_executions_by_id(self, execution_ids: Sequence[int]
                             ) -> list[Execution]:
        """Batched execution lookup."""
        return self.get_many("execution", execution_ids)

    def get_artifacts_by_context(self, context_id: int) -> list[Artifact]:
        """All artifacts attributed to a context — indexed."""
        self.indexes.context(context_id)
        return [self.indexes.artifacts[i]
                for i in self.indexes.artifacts_in_context.get(
                    context_id, ())]

    def get_executions_by_context(self,
                                  context_id: int) -> list[Execution]:
        """All executions associated with a context — indexed."""
        self.indexes.context(context_id)
        return [self.indexes.executions[i]
                for i in self.indexes.executions_in_context.get(
                    context_id, ())]

    def get_contexts_by_execution(self,
                                  execution_id: int) -> list[Context]:
        """Contexts an execution belongs to."""
        return [self.indexes.contexts[i]
                for i in self.indexes.contexts_of_execution.get(
                    execution_id, ())]

    def get_contexts_by_artifact(self, artifact_id: int) -> list[Context]:
        """Contexts an artifact belongs to."""
        return [self.indexes.contexts[i]
                for i in self.indexes.contexts_of_artifact.get(
                    artifact_id, ())]

    def get_attributions(self) -> list[tuple[int, int]]:
        """All (context_id, artifact_id) membership pairs."""
        return [(context_id, artifact_id)
                for context_id, members in
                self.indexes.artifacts_in_context.items()
                for artifact_id in members]

    def get_associations(self) -> list[tuple[int, int]]:
        """All (context_id, execution_id) membership pairs."""
        return [(context_id, execution_id)
                for context_id, members in
                self.indexes.executions_in_context.items()
                for execution_id in members]

    def get_telemetry(self, kind: str | None = None,
                      name: str | None = None) -> list[TelemetryRecord]:
        """All telemetry records, optionally filtered by kind and name."""
        rows = self.indexes.telemetry.values()
        if kind is not None:
            rows = (r for r in rows if r.kind == kind)
        if name is not None:
            rows = (r for r in rows if r.name == name)
        return list(rows)

    def get_telemetry_by_execution(self, execution_id: int
                                   ) -> list[TelemetryRecord]:
        """Telemetry rows describing one execution — indexed."""
        return [self.indexes.telemetry[i]
                for i in self.indexes.telemetry_of_execution.get(
                    execution_id, ())]

    def get_telemetry_by_context(self, context_id: int
                                 ) -> list[TelemetryRecord]:
        """Telemetry rows attached to one context — indexed."""
        return [self.indexes.telemetry[i]
                for i in self.indexes.telemetry_of_context.get(
                    context_id, ())]

    @property
    def num_artifacts(self) -> int:
        """Total artifacts."""
        return len(self.indexes.artifacts)

    @property
    def num_executions(self) -> int:
        """Total executions."""
        return len(self.indexes.executions)

    @property
    def num_events(self) -> int:
        """Total events."""
        return len(self.indexes.events)

    @property
    def num_telemetry(self) -> int:
        """Total telemetry records."""
        return len(self.indexes.telemetry)

    # ------------------------------------------------- typed filtered reads

    def artifacts(self, type_name: str | None = None,
                  state: str | None = None) -> list[Artifact]:
        """Artifacts filtered by type and/or state via secondary indexes."""
        ids = self._filtered_ids(self.indexes.artifacts,
                                 self.indexes.artifacts_by_type,
                                 self.indexes.artifacts_by_state,
                                 type_name, state)
        return [self.indexes.artifacts[i] for i in ids]

    def executions(self, type_name: str | None = None,
                   state: str | None = None) -> list[Execution]:
        """Executions filtered by type and/or state via secondary indexes."""
        ids = self._filtered_ids(self.indexes.executions,
                                 self.indexes.executions_by_type,
                                 self.indexes.executions_by_state,
                                 type_name, state)
        return [self.indexes.executions[i] for i in ids]

    def contexts(self, type_name: str | None = None) -> list[Context]:
        """Contexts filtered by type via the type index."""
        if type_name is None:
            return list(self.indexes.contexts.values())
        return [self.indexes.contexts[i]
                for i in self.indexes.contexts_by_type.get(type_name, ())]

    @staticmethod
    def _filtered_ids(all_nodes, by_type, by_state, type_name, state):
        if type_name is None and state is None:
            return list(all_nodes)
        if type_name is not None and state is not None:
            state_ids = by_state.get(state, ())
            return [i for i in by_type.get(type_name, ()) if i in state_ids]
        if type_name is not None:
            return list(by_type.get(type_name, ()))
        return list(by_state.get(state, ()))

    # ------------------------------------------------------- batched reads

    def get_many(self, kind: str, ids: Sequence[int]) -> list:
        """Batched point lookup of one node kind.

        ``kind`` is one of ``artifact`` / ``execution`` / ``context``;
        anything else raises :class:`InvalidQueryError`. Missing ids
        raise :class:`NotFoundError`, like the point lookups.
        """
        if kind == "artifact":
            lookup = self.indexes.artifact
        elif kind == "execution":
            lookup = self.indexes.execution
        elif kind == "context":
            lookup = self.indexes.context
        else:
            raise InvalidQueryError(
                f"unknown node kind {kind!r}; expected one of {NODE_KINDS}")
        return [lookup(i) for i in ids]

    def neighbors_many(self, relation: str,
                       ids: Sequence[int]) -> dict[int, list[int]]:
        """Batched adjacency: ``relation`` neighbors of every id.

        ``inputs`` / ``outputs`` take execution ids and return artifact
        ids; ``consumers`` / ``producers`` take artifact ids and return
        execution ids. Unknown relations raise
        :class:`InvalidQueryError`; unknown ids map to empty lists
        (a node with no edges is indistinguishable from one with none).
        """
        if relation == "inputs":
            adjacency = self.indexes.inputs_of
        elif relation == "outputs":
            adjacency = self.indexes.outputs_of
        elif relation == "consumers":
            adjacency = self.indexes.consumers_of
        elif relation == "producers":
            adjacency = self.indexes.producers_of
        else:
            raise InvalidQueryError(
                f"unknown relation {relation!r}; expected one of "
                f"{RELATIONS}")
        return {i: list(adjacency.get(i, ())) for i in ids}

    # ------------------------------------------------- cached segmentation

    def segment_pipeline(self, context_id: int) -> list[Graphlet]:
        """Graphlets of one pipeline, LRU-cached on (context, version).

        The cache key includes the current index version, so any store
        mutation invalidates by staleness: re-segmenting an unchanged
        pipeline is a dictionary hit, segmenting after a write recomputes.
        Returned graphlets read through this client, so their feature
        reads (waste extraction, diagnosis) hit the indexes too.
        """
        from ..graphlets.segmentation import segment_pipeline
        key = (context_id, self.indexes.version)
        cached = self._segment_cache.get(key)
        if cached is not None:
            self.segment_cache_hits += 1
            self._segment_cache.move_to_end(key)
            return list(cached)
        self.segment_cache_misses += 1
        graphlets = segment_pipeline(self, context_id)
        self._segment_cache[key] = tuple(graphlets)
        while len(self._segment_cache) > self._segment_cache_size:
            self._segment_cache.popitem(last=False)
        return graphlets

    def segment_corpus(self) -> dict[int, list[Graphlet]]:
        """Graphlets of every Pipeline context, via the cached segmenter."""
        return {context.id: self.segment_pipeline(context.id)
                for context in self.contexts("Pipeline")}


def as_client(store_or_client) -> MetadataClient:
    """Normalize a store-or-client argument to a :class:`MetadataClient`.

    Clients pass through untouched. A raw store gets a client built
    (one full scan) and cached on the store instance, so repeated calls
    — every analysis entry point funnels through here — share one
    incrementally-maintained index set.
    """
    if isinstance(store_or_client, MetadataClient):
        return store_or_client
    client = getattr(store_or_client, _CLIENT_ATTR, None)
    if client is None:
        client = MetadataClient(store_or_client)
        setattr(store_or_client, _CLIENT_ATTR, client)
    return client
