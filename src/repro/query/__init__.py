"""repro.query — the indexed read path over metadata stores.

Public surface:

* :class:`MetadataClient` — versioned query facade (see
  ``MetadataClient.API_VERSION``); implements the store read protocol
  plus typed filtered reads, batched ``get_many`` / ``neighbors_many``,
  and an LRU-cached graphlet segmenter.
* :func:`as_client` — boundary normalizer: accepts a store or a client,
  returns a client (cached per store).
* :class:`IndexSet` — the incrementally-maintained index structure, for
  code that needs the raw maps.
"""

from .client import NODE_KINDS, RELATIONS, MetadataClient, as_client
from .indexes import IndexSet

__all__ = [
    "IndexSet",
    "MetadataClient",
    "NODE_KINDS",
    "RELATIONS",
    "as_client",
]
