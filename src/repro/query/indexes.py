"""Incrementally-maintained secondary indexes over a metadata store.

An :class:`IndexSet` is the data structure behind
:class:`~repro.query.client.MetadataClient`: node maps, adjacency maps
(artifact ↔ execution via events), type/state/context secondary
indexes, a name index, and telemetry join maps — built once with a
full scan (:meth:`IndexSet.build`) and then kept current by the store's
mutation-listener protocol (:meth:`IndexSet.apply` subscribes via
:meth:`repro.mlmd.abstract.AbstractStore.subscribe`).

Two details make incremental maintenance correct here:

* The in-memory backend mutates node objects *in place* and re-puts
  them (the runtime flips an execution's state from RUNNING to COMPLETE
  on the same object), so an update notification cannot diff "old
  object vs new object" — they are the same object. The index instead
  remembers the last (type_name, state) it filed each node under
  (``_artifact_keys`` / ``_execution_keys``) and moves the id between
  buckets when that key changes.
* Secondary buckets are ``dict[int, None]`` used as ordered sets:
  O(1) membership moves while preserving insertion order, so indexed
  reads return nodes in the same order a store scan would.

``version`` increments on every applied mutation; readers that cache
derived results (the client's LRU-cached graphlet segmenter) key their
caches on it, so a write anywhere invalidates exactly by staleness.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from ..mlmd.errors import NotFoundError
from ..mlmd.types import (
    Artifact,
    Context,
    Event,
    EventType,
    Execution,
    TelemetryRecord,
)

if TYPE_CHECKING:
    from ..mlmd.abstract import AbstractStore


class IndexSet:
    """All secondary indexes over one store, maintained incrementally."""

    def __init__(self) -> None:
        #: Monotonic mutation counter; cache keys include it.
        self.version = 0
        # Node maps.
        self.artifacts: dict[int, Artifact] = {}
        self.executions: dict[int, Execution] = {}
        self.contexts: dict[int, Context] = {}
        self.events: list[Event] = []
        # Adjacency (event edges).
        self.inputs_of: dict[int, list[int]] = defaultdict(list)
        self.outputs_of: dict[int, list[int]] = defaultdict(list)
        self.consumers_of: dict[int, list[int]] = defaultdict(list)
        self.producers_of: dict[int, list[int]] = defaultdict(list)
        # Type / state secondary indexes (dict-as-ordered-set buckets).
        self.artifacts_by_type: dict[str, dict[int, None]] = defaultdict(dict)
        self.artifacts_by_state: dict[str, dict[int, None]] = \
            defaultdict(dict)
        self.executions_by_type: dict[str, dict[int, None]] = \
            defaultdict(dict)
        self.executions_by_state: dict[str, dict[int, None]] = \
            defaultdict(dict)
        self.contexts_by_type: dict[str, dict[int, None]] = defaultdict(dict)
        # Last-indexed (type_name, state) per node — see module docstring.
        self._artifact_keys: dict[int, tuple[str, str]] = {}
        self._execution_keys: dict[int, tuple[str, str]] = {}
        # Name index: (kind, type_name, name) -> id.
        self.named: dict[tuple[str, str, str], int] = {}
        # Context membership.
        self.artifacts_in_context: dict[int, list[int]] = defaultdict(list)
        self.executions_in_context: dict[int, list[int]] = defaultdict(list)
        self.contexts_of_artifact: dict[int, list[int]] = defaultdict(list)
        self.contexts_of_execution: dict[int, list[int]] = defaultdict(list)
        # Telemetry joins.
        self.telemetry: dict[int, TelemetryRecord] = {}
        self.telemetry_of_execution: dict[int, list[int]] = defaultdict(list)
        self.telemetry_of_context: dict[int, list[int]] = defaultdict(list)

    # ------------------------------------------------------------ build

    def build(self, store: AbstractStore) -> None:
        """(Re)build every index from a full store scan.

        ``version`` keeps counting across rebuilds so stale cache keys
        from before the rebuild can never collide with fresh ones.
        """
        old_version = self.version
        self.__init__()
        self.version = old_version
        for artifact in store.get_artifacts():
            self._index_artifact(artifact, created=True)
        for execution in store.get_executions():
            self._index_execution(execution, created=True)
        for context in store.get_contexts():
            self._index_context(context, created=True)
        for event in store.get_events():
            self._index_event(event)
        for context_id, artifact_id in store.get_attributions():
            self._index_attribution(context_id, artifact_id)
        for context_id, execution_id in store.get_associations():
            self._index_association(context_id, execution_id)
        for record in store.get_telemetry():
            self._index_telemetry(record, created=True)
        self.version += 1

    # --------------------------------------------------------- listener

    def apply(self, kind: str, payload: object, created: bool = True) -> None:
        """Mutation listener: route one store write into the indexes."""
        if kind == "artifact":
            self._index_artifact(payload, created)
        elif kind == "execution":
            self._index_execution(payload, created)
        elif kind == "context":
            self._index_context(payload, created)
        elif kind == "event":
            self._index_event(payload)
        elif kind == "attribution":
            self._index_attribution(*payload)
        elif kind == "association":
            self._index_association(*payload)
        elif kind == "telemetry":
            self._index_telemetry(payload, created)
        self.version += 1

    # ---------------------------------------------------------- helpers

    def _index_artifact(self, artifact: Artifact, created: bool) -> None:
        self.artifacts[artifact.id] = artifact
        key = (artifact.type_name, artifact.state.value)
        old = self._artifact_keys.get(artifact.id)
        if old == key:
            return
        if old is not None:
            self.artifacts_by_type[old[0]].pop(artifact.id, None)
            self.artifacts_by_state[old[1]].pop(artifact.id, None)
        self._artifact_keys[artifact.id] = key
        self.artifacts_by_type[key[0]][artifact.id] = None
        self.artifacts_by_state[key[1]][artifact.id] = None
        if created and artifact.name:
            self.named[("artifact", artifact.type_name, artifact.name)] = \
                artifact.id

    def _index_execution(self, execution: Execution, created: bool) -> None:
        self.executions[execution.id] = execution
        key = (execution.type_name, execution.state.value)
        old = self._execution_keys.get(execution.id)
        if old == key:
            return
        if old is not None:
            self.executions_by_type[old[0]].pop(execution.id, None)
            self.executions_by_state[old[1]].pop(execution.id, None)
        self._execution_keys[execution.id] = key
        self.executions_by_type[key[0]][execution.id] = None
        self.executions_by_state[key[1]][execution.id] = None
        if created and execution.name:
            self.named[("execution", execution.type_name, execution.name)] \
                = execution.id

    def _index_context(self, context: Context, created: bool) -> None:
        self.contexts[context.id] = context
        self.contexts_by_type[context.type_name][context.id] = None
        if created and context.name:
            self.named[("context", context.type_name, context.name)] = \
                context.id

    def _index_event(self, event: Event) -> None:
        self.events.append(event)
        if event.type is EventType.INPUT:
            self.inputs_of[event.execution_id].append(event.artifact_id)
            self.consumers_of[event.artifact_id].append(event.execution_id)
        else:
            self.outputs_of[event.execution_id].append(event.artifact_id)
            self.producers_of[event.artifact_id].append(event.execution_id)

    def _index_attribution(self, context_id: int, artifact_id: int) -> None:
        self.artifacts_in_context[context_id].append(artifact_id)
        self.contexts_of_artifact[artifact_id].append(context_id)

    def _index_association(self, context_id: int, execution_id: int) -> None:
        self.executions_in_context[context_id].append(execution_id)
        self.contexts_of_execution[execution_id].append(context_id)

    def _index_telemetry(self, record: TelemetryRecord,
                         created: bool) -> None:
        self.telemetry[record.id] = record
        if created:
            if record.execution_id is not None:
                self.telemetry_of_execution[record.execution_id].append(
                    record.id)
            if record.context_id is not None:
                self.telemetry_of_context[record.context_id].append(
                    record.id)

    # ------------------------------------------------------ typed reads

    def artifact(self, artifact_id: int) -> Artifact:
        """Point lookup; NotFoundError when absent."""
        try:
            return self.artifacts[artifact_id]
        except KeyError:
            raise NotFoundError(f"artifact id {artifact_id} not found") \
                from None

    def execution(self, execution_id: int) -> Execution:
        """Point lookup; NotFoundError when absent."""
        try:
            return self.executions[execution_id]
        except KeyError:
            raise NotFoundError(f"execution id {execution_id} not found") \
                from None

    def context(self, context_id: int) -> Context:
        """Point lookup; NotFoundError when absent."""
        try:
            return self.contexts[context_id]
        except KeyError:
            raise NotFoundError(f"context id {context_id} not found") \
                from None
