"""Graphlet segmentation of pipeline traces (Section 4.1, Appendix A).

Given a Trainer execution ``n``, its graphlet comprises:

  (a) all ancestor executions of ``n`` (and their input/output artifacts),
      where ancestor traversal *cuts* at other Trainer executions — a
      warm-start or model-chaining edge is a boundary between graphlets
      (the paper's Figure 8 cut);
  (b) all data-analysis/-validation executions performed on data spans
      (or artifacts) already collected by rule (a), plus their
      input/output artifacts — these validators gate training without
      being data ancestors of the Trainer;
  (c) all descendant executions of ``n`` that are not on paths to other
      Trainer executions — implemented per Appendix A with the stop
      predicate ``sc`` = {Trainer, Transform} executions.

The imperative implementation here is the production path;
:mod:`repro.graphlets.datalog_rules` runs the same queries on the
Datalog engine and the test-suite checks equivalence.

Entry points accept a raw store or a :class:`~repro.query.MetadataClient`.
Raw stores are routed through :func:`repro.query.as_client`, so
:func:`segment_pipeline` / :func:`segment_corpus` always run over the
client's adjacency indexes and hit its LRU segmentation cache (keyed on
context id + index version) on repeated calls.
"""

from __future__ import annotations

from collections import deque

from ..mlmd import MetadataStore
from ..mlmd.errors import InvalidQueryError
from ..obs.metrics import get_registry
from ..obs.tracing import span
from .graphlet import DATA_ANALYSIS_TYPES, STOP_TYPES, Graphlet


def _ancestor_executions(store: MetadataStore, trainer_id: int) -> set[int]:
    """Rule (a) executions: ancestors, cutting at other Trainers."""
    seen: set[int] = set()
    frontier = deque([trainer_id])
    while frontier:
        current = frontier.popleft()
        for artifact_id in store.get_input_artifact_ids(current):
            for producer in store.get_producer_execution_ids(artifact_id):
                if producer in seen or producer == trainer_id:
                    continue
                if store.get_execution(producer).type_name == "Trainer":
                    continue  # Warm-start / chaining cut.
                seen.add(producer)
                frontier.append(producer)
    return seen


def _descendant_executions(store: MetadataStore, trainer_id: int
                           ) -> set[int]:
    """Rule (c) executions: descendants, stopping at sc nodes."""
    seen: set[int] = set()
    frontier = deque([trainer_id])
    while frontier:
        current = frontier.popleft()
        for artifact_id in store.get_output_artifact_ids(current):
            for consumer in store.get_consumer_execution_ids(artifact_id):
                if consumer in seen or consumer == trainer_id:
                    continue
                if store.get_execution(consumer).type_name in STOP_TYPES:
                    continue
                seen.add(consumer)
                frontier.append(consumer)
    return seen


def _io_artifacts(store: MetadataStore, execution_ids: set[int],
                  exclude_foreign_models: bool) -> set[int]:
    """Input/output artifacts of the executions.

    When ``exclude_foreign_models`` is set, Model artifacts produced by
    executions outside the set are dropped — they are the cut warm-start
    inputs belonging to the neighboring graphlet.
    """
    artifact_ids: set[int] = set()
    for execution_id in execution_ids:
        artifact_ids.update(store.get_input_artifact_ids(execution_id))
        artifact_ids.update(store.get_output_artifact_ids(execution_id))
    if not exclude_foreign_models:
        return artifact_ids
    kept: set[int] = set()
    for artifact_id in artifact_ids:
        artifact = store.get_artifact(artifact_id)
        if artifact.type_name in ("Model", "PushedModel"):
            producers = set(store.get_producer_execution_ids(artifact_id))
            if producers and not (producers & execution_ids):
                continue
        kept.add(artifact_id)
    return kept


def segment_trainer(store: MetadataStore, trainer_id: int,
                    pipeline_context_id: int) -> Graphlet:
    """Extract the graphlet of one Trainer execution."""
    from ..query import as_client
    store = as_client(store)
    trainer = store.get_execution(trainer_id)
    if trainer.type_name != "Trainer":
        raise InvalidQueryError(
            f"execution {trainer_id} is a {trainer.type_name}, not a Trainer")
    executions = {trainer_id}
    executions |= _ancestor_executions(store, trainer_id)
    executions |= _descendant_executions(store, trainer_id)
    artifacts = _io_artifacts(store, executions,
                              exclude_foreign_models=True)
    # Rule (b): data-analysis/validation executions over collected
    # artifacts (per-span statistics, schema inference, and validation
    # runs). Iterated to fixpoint so analysis chains (span → statistics →
    # schema → validation) are captured whole.
    changed = True
    while changed:
        changed = False
        artifacts = _io_artifacts(store, executions,
                                  exclude_foreign_models=True)
        for artifact_id in artifacts:
            for consumer in store.get_consumer_execution_ids(artifact_id):
                if consumer in executions:
                    continue
                if store.get_execution(consumer).type_name \
                        not in DATA_ANALYSIS_TYPES:
                    continue
                executions.add(consumer)
                changed = True
    artifacts = _io_artifacts(store, executions,
                              exclude_foreign_models=True)
    return Graphlet(store=store, pipeline_context_id=pipeline_context_id,
                    trainer_execution_id=trainer_id,
                    execution_ids=executions, artifact_ids=artifacts)


def segment_pipeline(store: MetadataStore,
                     pipeline_context_id: int) -> list[Graphlet]:
    """All graphlets of one pipeline, in chronological trainer order.

    Chronological order is what defines *consecutive graphlets*
    (Section 4.2) for the similarity and cadence analyses.

    Raw stores are routed through the client's LRU-cached segmenter;
    the computation below runs on cache misses (the client calls back
    in with itself as ``store``).
    """
    from ..query import MetadataClient, as_client
    if not isinstance(store, MetadataClient):
        return as_client(store).segment_pipeline(pipeline_context_id)
    registry = get_registry()
    with span("graphlets.segment_pipeline",
              context_id=pipeline_context_id), \
            registry.timer("graphlets.segment_pipeline_seconds"):
        trainers = [
            e for e in store.get_executions_by_context(pipeline_context_id)
            if e.type_name == "Trainer"
        ]
        trainers.sort(key=lambda e: (e.start_time, e.id))
        graphlets = [segment_trainer(store, t.id, pipeline_context_id)
                     for t in trainers]
    registry.counter("graphlets.segmented").inc(len(graphlets))
    return graphlets


def segment_corpus(store: MetadataStore) -> dict[int, list[Graphlet]]:
    """Graphlets of every pipeline in the store, keyed by context id."""
    from ..query import as_client
    client = as_client(store)
    return {context.id: client.segment_pipeline(context.id)
            for context in client.contexts("Pipeline")}


def consecutive_pairs(graphlets: list[Graphlet]
                      ) -> list[tuple[Graphlet, Graphlet]]:
    """Adjacent-in-time graphlet pairs of one pipeline (Section 4.2)."""
    return list(zip(graphlets, graphlets[1:]))
