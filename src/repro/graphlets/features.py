"""Structural (shape) features of a graphlet (Section 5.2.1).

Shape features are "the count of executions corresponding to each
operator, as well as the average input and output count for each
execution", partitioned into pre-trainer operators, the Trainer, and
post-trainer operators. Obtaining the features for a stage requires
actually running the graphlet up to that stage — which is why Table 3
assigns each feature family a compute cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mlmd import MetadataStore
from ..tfx.cost import POST_TRAINER_GROUPS, PRE_TRAINER_GROUPS, OperatorGroup
from .graphlet import Graphlet

#: Feature-extraction stages, in pipeline order.
STAGE_PRE = "pre_trainer"
STAGE_TRAINER = "trainer"
STAGE_POST = "post_trainer"


def stage_of_group(group_value: str) -> str:
    """Map an operator group (string form) to its stage."""
    group = OperatorGroup(group_value)
    if group in PRE_TRAINER_GROUPS:
        return STAGE_PRE
    if group in POST_TRAINER_GROUPS:
        return STAGE_POST
    return STAGE_TRAINER


@dataclass
class OperatorShape:
    """Shape of one operator type within a graphlet."""

    count: int = 0
    total_inputs: int = 0
    total_outputs: int = 0

    @property
    def avg_inputs(self) -> float:
        """Average input artifacts per execution."""
        return self.total_inputs / self.count if self.count else 0.0

    @property
    def avg_outputs(self) -> float:
        """Average output artifacts per execution."""
        return self.total_outputs / self.count if self.count else 0.0


@dataclass
class GraphletShape:
    """Full shape summary: per-operator stats, partitioned by stage."""

    by_operator: dict[str, OperatorShape] = field(default_factory=dict)
    by_stage: dict[str, dict[str, OperatorShape]] = field(
        default_factory=dict)

    def stage_feature_dict(self, stages: set[str]) -> dict[str, float]:
        """Numeric feature dict restricted to the given stages.

        Keys are ``{op}_count`` / ``{op}_avg_in`` / ``{op}_avg_out`` —
        the encoding fed to the waste-mitigation models.
        """
        out: dict[str, float] = {}
        for stage in stages:
            for op_name, shape in self.by_stage.get(stage, {}).items():
                out[f"{op_name}_count"] = float(shape.count)
                out[f"{op_name}_avg_in"] = shape.avg_inputs
                out[f"{op_name}_avg_out"] = shape.avg_outputs
        return out


def graphlet_shape(graphlet: Graphlet) -> GraphletShape:
    """Compute the shape summary of one graphlet."""
    store: MetadataStore = graphlet.store
    shape = GraphletShape()
    for execution_id in graphlet.execution_ids:
        execution = store.get_execution(execution_id)
        op_name = execution.type_name
        stage = stage_of_group(str(execution.get("group", "custom")))
        per_op = shape.by_operator.setdefault(op_name, OperatorShape())
        per_stage = shape.by_stage.setdefault(stage, {}).setdefault(
            op_name, OperatorShape())
        n_in = len(store.get_input_artifact_ids(execution_id))
        n_out = len(store.get_output_artifact_ids(execution_id))
        for bucket in (per_op, per_stage):
            bucket.count += 1
            bucket.total_inputs += n_in
            bucket.total_outputs += n_out
    return shape
