"""Appendix A's graphlet queries, executed on the Datalog engine.

The paper specifies segmentation declaratively:

    g(V) :- E(V, X), g(X).
    g(V) :- g(X), E(X, V), NOT sc(V).

with ``sc`` holding Trainer and Transform executions. Here we build that
program (refined with the warm-start cut of Figure 8: ancestor traversal
does not pass through other Trainer executions) over the edge relation
of one pipeline's trace and evaluate it bottom-up. The result must match
the imperative BFS in :mod:`repro.graphlets.segmentation` — a test
enforces it — making the BFS a verified, faster implementation of the
declarative spec.
"""

from __future__ import annotations

from ..datalog import Atom, Program, Variable, evaluate
from ..mlmd import EventType, MetadataStore
from .graphlet import STOP_TYPES


def build_program(store: MetadataStore, pipeline_context_id: int,
                  trainer_id: int) -> Program:
    """Construct the Appendix-A program for one trainer execution."""
    program = Program()
    executions = store.get_executions_by_context(pipeline_context_id)
    execution_ids = {e.id for e in executions}
    for execution in executions:
        if execution.type_name in STOP_TYPES:
            program.add_fact("stop", execution.id)
        if execution.type_name == "Trainer":
            program.add_fact("trainer", execution.id)
    for event in store.get_events():
        if event.execution_id not in execution_ids:
            continue
        if event.type is EventType.INPUT:
            program.add_fact("inp", event.artifact_id, event.execution_id)
        else:
            program.add_fact("out", event.execution_id, event.artifact_id)
    program.add_fact("seed", trainer_id)
    # Ensure negated relations exist even when empty.
    program.facts.setdefault("stop", set())
    program.facts.setdefault("trainer", set())

    n = Variable("n")
    e = Variable("e")
    e2 = Variable("e2")
    a = Variable("a")
    # Ancestors, cutting at other Trainer executions (Figure 8's cut).
    program.add_rule(Atom("anc", (e,)),
                     Atom("seed", (n,)), Atom("inp", (a, n)),
                     Atom("out", (e, a)),
                     Atom("trainer", (e,), negated=True))
    program.add_rule(Atom("anc", (e,)),
                     Atom("anc", (e2,)), Atom("inp", (a, e2)),
                     Atom("out", (e, a)),
                     Atom("trainer", (e,), negated=True))
    # Descendants, stopping at sc = {Trainer, Transform}.
    program.add_rule(Atom("desc", (e,)),
                     Atom("seed", (n,)), Atom("out", (n, a)),
                     Atom("inp", (a, e)),
                     Atom("stop", (e,), negated=True))
    program.add_rule(Atom("desc", (e,)),
                     Atom("desc", (e2,)), Atom("out", (e2, a)),
                     Atom("inp", (a, e)),
                     Atom("stop", (e,), negated=True))
    program.add_rule(Atom("g", (e,)), Atom("seed", (e,)))
    program.add_rule(Atom("g", (e,)), Atom("anc", (e,)))
    program.add_rule(Atom("g", (e,)), Atom("desc", (e,)))
    return program


def datalog_graphlet_executions(store: MetadataStore,
                                pipeline_context_id: int,
                                trainer_id: int) -> set[int]:
    """Execution ids of the trainer's graphlet, per the Datalog query.

    Rules (a) and (c) only — rule (b)'s data-analysis augmentation is a
    post-processing step in both implementations.
    """
    program = build_program(store, pipeline_context_id, trainer_id)
    relations = evaluate(program)
    return {row[0] for row in relations.get("g", set())}
