"""The model graphlet: a per-model sub-trace (Section 4.1).

A graphlet is the subgraph of a pipeline trace capturing one end-to-end
logical pipeline run around a single Trainer execution: its data
ancestors (rule a), associated data-analysis/validation executions
(rule b), and its post-training descendants up to the next Trainer
(rule c). This class is a lightweight view over the metadata store; the
segmentation algorithms in :mod:`repro.graphlets.segmentation` produce
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mlmd import Execution, ExecutionState, MetadataStore
from ..similarity.feature_metric import SpanDigest
from ..tfx import artifacts as A

#: Execution type names counted as data analysis / validation (rule b).
DATA_ANALYSIS_TYPES = frozenset({
    "StatisticsGen", "SchemaGen", "ExampleValidator",
})

#: Execution type names that stop descendant traversal (Appendix A's sc).
STOP_TYPES = frozenset({"Trainer", "Transform"})


@dataclass
class Graphlet:
    """One model graphlet.

    Attributes:
        store: The metadata store the ids refer to.
        pipeline_context_id: The owning pipeline's Context id.
        trainer_execution_id: The central Trainer execution.
        execution_ids: All executions in the graphlet (trainer included).
        artifact_ids: All artifacts in the graphlet.
    """

    store: MetadataStore
    pipeline_context_id: int
    trainer_execution_id: int
    execution_ids: set[int] = field(default_factory=set)
    artifact_ids: set[int] = field(default_factory=set)

    # ------------------------------------------------------------ nodes

    @property
    def trainer(self) -> Execution:
        """The central Trainer execution."""
        return self.store.get_execution(self.trainer_execution_id)

    def executions(self) -> list[Execution]:
        """All executions, ordered by start time."""
        rows = [self.store.get_execution(i) for i in self.execution_ids]
        return sorted(rows, key=lambda e: (e.start_time, e.id))

    @property
    def node_count(self) -> int:
        """Total executions + artifacts in the graphlet."""
        return len(self.execution_ids) + len(self.artifact_ids)

    # ------------------------------------------------------------ model

    @property
    def model_artifact_id(self) -> int | None:
        """The Model artifact produced by the trainer (None if it failed)."""
        for artifact_id in self.store.get_output_artifact_ids(
                self.trainer_execution_id):
            if self.store.get_artifact(artifact_id).type_name == A.MODEL:
                return artifact_id
        return None

    @property
    def model_type(self) -> str:
        """The trained model's type ('unknown' when training failed)."""
        model_id = self.model_artifact_id
        if model_id is None:
            return "unknown"
        return str(self.store.get_artifact(model_id).get("model_type",
                                                         "unknown"))

    @property
    def architecture(self) -> str:
        """DNN architecture label (empty for non-DNN models)."""
        model_id = self.model_artifact_id
        if model_id is None:
            return ""
        return str(self.store.get_artifact(model_id).get("architecture", ""))

    @property
    def code_version(self) -> str:
        """Trainer code version (recorded even when training failed)."""
        version = self.trainer.get("code_version")
        if version:
            return str(version)
        model_id = self.model_artifact_id
        if model_id is None:
            return ""
        return str(self.store.get_artifact(model_id).get("code_version", ""))

    @property
    def warm_started(self) -> bool:
        """True if the trainer was warm-started from a previous model."""
        model_id = self.model_artifact_id
        if model_id is None:
            return False
        return bool(self.store.get_artifact(model_id).get("warm_started",
                                                          False))

    @property
    def trainer_failed(self) -> bool:
        """True when the Trainer execution itself failed."""
        return self.trainer.state is ExecutionState.FAILED

    # ------------------------------------------------------------- push

    @property
    def pushed(self) -> bool:
        """True when the graphlet deployed its model (Section 4.3.1)."""
        return any(
            self.store.get_artifact(a).type_name == A.PUSHED_MODEL
            for a in self.artifact_ids)

    # ------------------------------------------------------------- data

    def input_span_artifact_ids(self) -> list[int]:
        """DataSpan artifacts consumed by the trainer, in event order."""
        return [
            a for a in self.store.get_input_artifact_ids(
                self.trainer_execution_id)
            if self.store.get_artifact(a).type_name == A.DATA_SPAN
        ]

    def span_sequence(self) -> list[SpanDigest]:
        """Span digests of the trainer's inputs, ordered by ingestion."""
        return self.span_sequence_with_ids()[1]

    def span_sequence_with_ids(self) -> tuple[list[int], list[SpanDigest]]:
        """(artifact ids, digests) of the input spans, ingestion order.

        The ids key the corpus-wide span-pair similarity cache; the
        digest list is cached on the graphlet (property reconstruction is
        the hot path of the similarity analyses).
        """
        cached = getattr(self, "_span_seq_cache", None)
        if cached is not None:
            return cached
        spans = [self.store.get_artifact(a)
                 for a in self.input_span_artifact_ids()]
        spans.sort(key=lambda a: (a.get("span_id", 0), a.id))
        result = ([a.id for a in spans],
                  [SpanDigest.from_properties(a.properties) for a in spans])
        self._span_seq_cache = result
        return result

    def span_id_set(self) -> set[int]:
        """The I(g) of Section 4.2.1: identities of the input spans."""
        return set(self.input_span_artifact_ids())

    # ------------------------------------------------------------- time

    @property
    def start_time(self) -> float:
        """Earliest node timestamp in the graphlet."""
        times = [self.store.get_execution(e).start_time
                 for e in self.execution_ids]
        times += [self.store.get_artifact(a).create_time
                  for a in self.artifact_ids]
        return min(times) if times else 0.0

    @property
    def end_time(self) -> float:
        """Latest node timestamp in the graphlet."""
        times = []
        for e in self.execution_ids:
            execution = self.store.get_execution(e)
            times.append(execution.end_time or execution.start_time)
        times += [self.store.get_artifact(a).create_time
                  for a in self.artifact_ids]
        return max(times) if times else 0.0

    @property
    def duration_hours(self) -> float:
        """End-to-end graphlet duration (Figure 9(e))."""
        return max(self.end_time - self.start_time, 0.0)

    # ------------------------------------------------------------- cost

    def _cpu_of(self, execution_id: int) -> float:
        return float(self.store.get_execution(execution_id).get(
            "cpu_hours", 0.0))

    @property
    def total_cpu_hours(self) -> float:
        """Total compute of the graphlet's executions."""
        return sum(self._cpu_of(e) for e in self.execution_ids)

    @property
    def training_cpu_hours(self) -> float:
        """The trainer execution's compute (Figure 9(d))."""
        return self._cpu_of(self.trainer_execution_id)

    def cpu_hours_by_group(self) -> dict[str, float]:
        """Compute broken down by operator group."""
        out: dict[str, float] = {}
        for execution_id in self.execution_ids:
            execution = self.store.get_execution(execution_id)
            group = str(execution.get("group", "custom"))
            out[group] = out.get(group, 0.0) + float(
                execution.get("cpu_hours", 0.0))
        return out
