"""Model graphlets: segmentation, views, and structural features."""

from .datalog_rules import build_program, datalog_graphlet_executions
from .features import (
    STAGE_POST,
    STAGE_PRE,
    STAGE_TRAINER,
    GraphletShape,
    OperatorShape,
    graphlet_shape,
    stage_of_group,
)
from .graphlet import DATA_ANALYSIS_TYPES, STOP_TYPES, Graphlet
from .segmentation import (
    consecutive_pairs,
    segment_corpus,
    segment_pipeline,
    segment_trainer,
)

__all__ = [
    "DATA_ANALYSIS_TYPES",
    "Graphlet",
    "GraphletShape",
    "OperatorShape",
    "STAGE_POST",
    "STAGE_PRE",
    "STAGE_TRAINER",
    "STOP_TYPES",
    "build_program",
    "consecutive_pairs",
    "datalog_graphlet_executions",
    "graphlet_shape",
    "segment_corpus",
    "segment_pipeline",
    "segment_trainer",
    "stage_of_group",
]
