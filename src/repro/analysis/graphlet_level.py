"""Graphlet-level (fine-grained) analysis — Section 4.

Functions over segmented graphlets producing the paper's artifacts:

* :func:`similarity_table` — Table 1 (Jaccard / dataset / avg-dataset
  similarity of consecutive graphlets)
* :func:`inter_graphlet_gaps` — Figure 9(a)/(b)
* :func:`graphlets_between_pushes` — Figure 9(c)
* :func:`cost_by_push` — Figure 9(d)
* :func:`durations` — Figure 9(e)
* :func:`push_rate_by_model_type` — Figure 9(f)
* :func:`push_vs_drift_table` — Table 2
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..graphlets import Graphlet, consecutive_pairs
from ..similarity import SpanPairCache, jaccard_similarity
from .distributions import bucket_fractions

#: Table 1's similarity ranges.
SIMILARITY_EDGES = [0.0, 0.25, 0.5, 0.75, 1.0]


def similarity_table(graphlets_by_pipeline: dict[int, list[Graphlet]]
                     ) -> dict[str, dict]:
    """Table 1: similarity metrics over consecutive graphlet pairs.

    Rows: ``jaccard`` (span-identity reuse), ``dataset`` (content
    similarity, Appendix B), ``avg_dataset`` (dataset similarity averaged
    within each pipeline first). Each row carries the Table-1 bucket
    fractions and the mean.
    """
    cache = SpanPairCache()
    jaccard_values: list[float] = []
    dataset_values: list[float] = []
    per_pipeline_means: list[float] = []
    for graphlets in graphlets_by_pipeline.values():
        pipeline_values = []
        for a, b in consecutive_pairs(graphlets):
            jaccard_values.append(
                jaccard_similarity(a.span_id_set(), b.span_id_set()))
            ids_a, seq_a = a.span_sequence_with_ids()
            ids_b, seq_b = b.span_sequence_with_ids()
            similarity = cache.sequence_similarity(ids_a, seq_a,
                                                   ids_b, seq_b)
            dataset_values.append(similarity)
            pipeline_values.append(similarity)
        if pipeline_values:
            per_pipeline_means.append(float(np.mean(pipeline_values)))

    def _row(values: list[float]) -> dict:
        return {
            "buckets": bucket_fractions(values, SIMILARITY_EDGES),
            "mean": float(np.mean(values)) if values else 0.0,
        }

    return {
        "jaccard": _row(jaccard_values),
        "dataset": _row(dataset_values),
        "avg_dataset": _row(per_pipeline_means),
    }


def inter_graphlet_gaps(graphlets_by_pipeline: dict[int, list[Graphlet]]
                        ) -> dict[str, list[float]]:
    """Figure 9(a)/(b): per-pipeline average gaps (hours).

    Returns the distribution of the average time between consecutive
    graphlets (``all``) and between consecutive *pushed* graphlets
    (``pushed``), one value per pipeline — matching the figure's
    "average time between consecutive model graphlets".
    """
    gaps_all: list[float] = []
    gaps_pushed: list[float] = []
    for graphlets in graphlets_by_pipeline.values():
        times = [g.trainer.start_time for g in graphlets]
        if len(times) >= 2:
            deltas = np.diff(times)
            gaps_all.append(float(np.mean(deltas)))
        pushed_times = [g.trainer.start_time for g in graphlets if g.pushed]
        if len(pushed_times) >= 2:
            deltas = np.diff(pushed_times)
            gaps_pushed.append(float(np.mean(deltas)))
    return {"all": gaps_all, "pushed": gaps_pushed}


def graphlets_between_pushes(graphlets_by_pipeline:
                             dict[int, list[Graphlet]]) -> list[int]:
    """Figure 9(c): unpushed graphlets between consecutive pushes."""
    counts: list[int] = []
    for graphlets in graphlets_by_pipeline.values():
        since_push: int | None = None
        for graphlet in graphlets:
            if graphlet.pushed:
                if since_push is not None:
                    counts.append(since_push)
                since_push = 0
            elif since_push is not None:
                since_push += 1
    return counts


def cost_by_push(graphlets_by_pipeline: dict[int, list[Graphlet]]
                 ) -> dict[str, list[float]]:
    """Figure 9(d): training cost of pushed vs unpushed graphlets."""
    out: dict[str, list[float]] = {"pushed": [], "unpushed": []}
    for graphlets in graphlets_by_pipeline.values():
        for graphlet in graphlets:
            key = "pushed" if graphlet.pushed else "unpushed"
            out[key].append(graphlet.training_cpu_hours)
    return out


def durations(graphlets_by_pipeline: dict[int, list[Graphlet]]
              ) -> list[float]:
    """Figure 9(e): graphlet durations in hours."""
    return [g.duration_hours
            for graphlets in graphlets_by_pipeline.values()
            for g in graphlets]


def push_rate_by_model_type(graphlets_by_pipeline:
                            dict[int, list[Graphlet]]) -> dict[str, float]:
    """Figure 9(f): likelihood of push per model type."""
    by_type: dict[str, list[bool]] = defaultdict(list)
    for graphlets in graphlets_by_pipeline.values():
        for graphlet in graphlets:
            by_type[graphlet.model_type].append(graphlet.pushed)
    return {name: float(np.mean(flags))
            for name, flags in by_type.items() if flags}


def unpushed_fraction(graphlets_by_pipeline:
                      dict[int, list[Graphlet]]) -> float:
    """Fraction of graphlets that never push (~0.80 in the paper)."""
    flags = [g.pushed for graphlets in graphlets_by_pipeline.values()
             for g in graphlets]
    if not flags:
        return 0.0
    return 1.0 - float(np.mean(flags))


def push_vs_drift_table(graphlets_by_pipeline:
                        dict[int, list[Graphlet]]) -> dict[str, dict]:
    """Table 2: input-data similarity and code match vs push outcome.

    For every graphlet with a predecessor, compare against the immediately
    preceding graphlet: the Appendix-B input similarity and whether the
    Trainer code version matches. Split means by the *successor's* push
    outcome.
    """
    cache = SpanPairCache()
    rows = {"input_similarity": defaultdict(list),
            "code_match": defaultdict(list)}
    for graphlets in graphlets_by_pipeline.values():
        for previous, current in consecutive_pairs(graphlets):
            key = "pushed" if current.pushed else "unpushed"
            ids_a, seq_a = previous.span_sequence_with_ids()
            ids_b, seq_b = current.span_sequence_with_ids()
            similarity = cache.sequence_similarity(ids_a, seq_a,
                                                   ids_b, seq_b)
            rows["input_similarity"][key].append(similarity)
            rows["input_similarity"]["all"].append(similarity)
            match = float(previous.code_version == current.code_version)
            rows["code_match"][key].append(match)
            rows["code_match"]["all"].append(match)
    return {
        metric: {group: float(np.mean(values)) if values else float("nan")
                 for group, values in groups.items()}
        for metric, groups in rows.items()
    }
