"""Pipeline-level (coarse-grained) analysis — Section 3.

Each function consumes a metadata store plus the pipeline context ids to
analyze and produces the data behind one of the paper's artifacts:

* :func:`lifespans`, :func:`models_per_day` — Figure 3(a)/(b)
* :func:`lifespan_by_model_type`, :func:`cadence_by_model_type` — 3(d)/(e)
* :func:`feature_counts`, :func:`feature_profile` — Figure 3(c)/(f) and
  the categorical-share / domain-size findings of Section 3.2
* :func:`analyzer_usage` — Figure 4
* :func:`model_mix` — Figure 5
* :func:`operator_presence` — Figure 6
* :func:`cost_breakdown` — Figure 7

All derive exclusively from the trace (artifacts, executions, events,
properties) — never from generator ground truth — exactly as the paper
derives them from MLMD.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

import numpy as np

from ..mlmd import MetadataStore, trace_lifespan_days, trace_node_count
from ..query import as_client
from ..tfx import artifacts as A
from ..tfx.cost import OperatorGroup
from ..tfx.model_types import ModelType, coarse_family

#: Operator type → functional group, for trace-derived presence/cost.
OPERATOR_GROUPS = {
    "ExampleGen": OperatorGroup.DATA_INGESTION,
    "StatisticsGen": OperatorGroup.DATA_ANALYSIS_VALIDATION,
    "SchemaGen": OperatorGroup.DATA_ANALYSIS_VALIDATION,
    "ExampleValidator": OperatorGroup.DATA_ANALYSIS_VALIDATION,
    "Transform": OperatorGroup.DATA_PREPROCESSING,
    "Tuner": OperatorGroup.TRAINING,
    "Trainer": OperatorGroup.TRAINING,
    "Evaluator": OperatorGroup.MODEL_ANALYSIS_VALIDATION,
    "ModelValidator": OperatorGroup.MODEL_ANALYSIS_VALIDATION,
    "InfraValidator": OperatorGroup.MODEL_ANALYSIS_VALIDATION,
    "Pusher": OperatorGroup.MODEL_DEPLOYMENT,
    "CustomOperator": OperatorGroup.CUSTOM,
}


def pipeline_model_family(store: MetadataStore, context_id: int) -> str:
    """Dominant coarse model family (DNN / Linear / Rest) of a pipeline."""
    store = as_client(store)
    counts: Counter = Counter()
    for artifact in store.get_artifacts_by_context(context_id):
        if artifact.type_name != A.MODEL:
            continue
        type_name = str(artifact.get("model_type", ""))
        try:
            counts[coarse_family(ModelType(type_name))] += 1
        except ValueError:
            continue
    if not counts:
        return "Rest"
    return counts.most_common(1)[0][0]


# ----------------------------------------------------------- Figure 3(a/b)

def lifespans(store: MetadataStore,
              context_ids: Iterable[int]) -> list[float]:
    """Per-pipeline lifespan in days (Figure 3(a))."""
    store = as_client(store)
    return [trace_lifespan_days(store, cid) for cid in context_ids]


def models_per_day(store: MetadataStore,
                   context_ids: Iterable[int]) -> list[float]:
    """Average trained models per active day, per pipeline (Figure 3(b))."""
    store = as_client(store)
    out = []
    for cid in context_ids:
        n_models = sum(
            1 for a in store.get_artifacts_by_context(cid)
            if a.type_name == A.MODEL)
        days = max(trace_lifespan_days(store, cid), 1e-3)
        out.append(n_models / days)
    return out


def lifespan_by_model_type(store: MetadataStore,
                           context_ids: Iterable[int]
                           ) -> dict[str, list[float]]:
    """Lifespans split by coarse model family (Figure 3(d))."""
    store = as_client(store)
    out: dict[str, list[float]] = defaultdict(list)
    for cid in context_ids:
        out[pipeline_model_family(store, cid)].append(
            trace_lifespan_days(store, cid))
    return dict(out)


def cadence_by_model_type(store: MetadataStore,
                          context_ids: Iterable[int]
                          ) -> dict[str, list[float]]:
    """Models/day split by coarse model family (Figure 3(e))."""
    store = as_client(store)
    out: dict[str, list[float]] = defaultdict(list)
    for cid in context_ids:
        family = pipeline_model_family(store, cid)
        n_models = sum(
            1 for a in store.get_artifacts_by_context(cid)
            if a.type_name == A.MODEL)
        days = max(trace_lifespan_days(store, cid), 1e-3)
        out[family].append(n_models / days)
    return dict(out)


def trace_sizes(store: MetadataStore,
                context_ids: Iterable[int]) -> list[int]:
    """Trace node counts (the paper's max is 6953 nodes)."""
    store = as_client(store)
    return [trace_node_count(store, cid) for cid in context_ids]


# ----------------------------------------------------------- Figure 3(c/f)

def feature_counts(store: MetadataStore,
                   context_ids: Iterable[int]) -> list[int]:
    """Per-pipeline input feature count (Figure 3(c)).

    Uses the span artifacts' recorded feature counts, taking the
    per-pipeline maximum (spans of one pipeline share a schema).
    """
    store = as_client(store)
    out = []
    for cid in context_ids:
        counts = [int(a.get("feature_count", 0))
                  for a in store.get_artifacts_by_context(cid)
                  if a.type_name == A.DATA_SPAN]
        if counts:
            out.append(max(counts))
    return out


def feature_profile(store: MetadataStore,
                    context_ids: Iterable[int]) -> dict:
    """Categorical share and domain sizes (Section 3.2, Figure 3(f)).

    Returns overall categorical fraction, mean categorical domain size,
    and mean domain size split by coarse model family.
    """
    store = as_client(store)
    cat_fractions = []
    domain_by_family: dict[str, list[float]] = defaultdict(list)
    domains_all = []
    for cid in context_ids:
        spans = [a for a in store.get_artifacts_by_context(cid)
                 if a.type_name == A.DATA_SPAN]
        if not spans:
            continue
        span = spans[-1]
        cat_fractions.append(float(span.get("categorical_fraction", 0.0)))
        domain = float(span.get("mean_domain_size", 0.0))
        if domain > 0:
            domains_all.append(domain)
            domain_by_family[pipeline_model_family(store, cid)].append(
                domain)
    return {
        "categorical_fraction_mean": float(np.mean(cat_fractions))
        if cat_fractions else 0.0,
        "mean_domain_size": float(np.mean(domains_all))
        if domains_all else 0.0,
        "mean_domain_by_family": {
            family: float(np.mean(values))
            for family, values in domain_by_family.items()
        },
    }


# --------------------------------------------------------------- Figure 4

def analyzer_usage(store: MetadataStore,
                   context_ids: Iterable[int]) -> dict[str, dict[str, float]]:
    """Analyzer usage (Figure 4): per-pipeline presence and total usage.

    Returns ``{"presence": {analyzer: fraction of pipelines}, "usage":
    {analyzer: share of total invocations}}``, read from the
    ``analyzer_*`` properties recorded on TransformGraph artifacts.
    """
    store = as_client(store)
    presence: Counter = Counter()
    usage: Counter = Counter()
    n_pipelines = 0
    for cid in context_ids:
        n_pipelines += 1
        seen: set[str] = set()
        for artifact in store.get_artifacts_by_context(cid):
            if artifact.type_name != A.TRANSFORM_GRAPH:
                continue
            for key, value in artifact.properties.items():
                if not key.startswith("analyzer_") or \
                        key == "analyzer_invocations":
                    continue
                name = key[len("analyzer_"):]
                seen.add(name)
                usage[name] += int(value)
        for name in seen:
            presence[name] += 1
    total_usage = sum(usage.values())
    return {
        "presence": {name: presence[name] / n_pipelines
                     for name in presence} if n_pipelines else {},
        "usage": {name: usage[name] / total_usage
                  for name in usage} if total_usage else {},
    }


# --------------------------------------------------------------- Figure 5

def model_mix(store: MetadataStore,
              context_ids: Iterable[int]) -> dict[str, float]:
    """Fraction of Trainer runs per model type (Figure 5)."""
    store = as_client(store)
    counts: Counter = Counter()
    for cid in context_ids:
        for artifact in store.get_artifacts_by_context(cid):
            if artifact.type_name == A.MODEL:
                counts[str(artifact.get("model_type", "unknown"))] += 1
    total = sum(counts.values())
    return {name: count / total for name, count in counts.items()} \
        if total else {}


# --------------------------------------------------------------- Figure 6

def operator_presence(store: MetadataStore,
                      context_ids: Iterable[int]) -> dict[str, float]:
    """Fraction of pipelines containing each operator group (Figure 6)."""
    store = as_client(store)
    group_counts: Counter = Counter()
    n_pipelines = 0
    for cid in context_ids:
        n_pipelines += 1
        groups = set()
        for execution in store.get_executions_by_context(cid):
            group = OPERATOR_GROUPS.get(execution.type_name)
            if group is not None:
                groups.add(group.value)
        for group in groups:
            group_counts[group] += 1
    if not n_pipelines:
        return {}
    return {group: count / n_pipelines
            for group, count in group_counts.items()}


def operator_type_presence(store: MetadataStore,
                           context_ids: Iterable[int]) -> dict[str, float]:
    """Fraction of pipelines containing each operator *type* (Figure 6).

    Finer-grained than the group view: the paper's observation that
    "about half of the pipelines employ data- and model-validation
    operators" is about the validator operators specifically, not the
    whole analysis group (statistics generation is near-universal).
    """
    store = as_client(store)
    type_counts: Counter = Counter()
    n_pipelines = 0
    for cid in context_ids:
        n_pipelines += 1
        types = {e.type_name for e in store.get_executions_by_context(cid)}
        for type_name in types:
            type_counts[type_name] += 1
    if not n_pipelines:
        return {}
    return {name: count / n_pipelines
            for name, count in sorted(type_counts.items())}


# --------------------------------------------------------------- Figure 7

def cost_breakdown(store: MetadataStore,
                   context_ids: Iterable[int]) -> dict[str, float]:
    """Share of total compute per operator group (Figure 7)."""
    store = as_client(store)
    costs: dict[str, float] = defaultdict(float)
    for cid in context_ids:
        for execution in store.get_executions_by_context(cid):
            group = str(execution.get(
                "group",
                OPERATOR_GROUPS.get(execution.type_name,
                                    OperatorGroup.CUSTOM).value))
            costs[group] += float(execution.get("cpu_hours", 0.0))
    total = sum(costs.values())
    if total <= 0:
        return {}
    return {group: cost / total for group, cost in costs.items()}


def cached_execution_stats(store: MetadataStore,
                           context_ids: Iterable[int]) -> dict[str, float]:
    """Cache-served execution share and saved compute (Section 5).

    The paper reports cached executions fleet-wide as the measurable
    form of its redundancy claim; with the execution cache enabled
    (``repro generate --exec-cache``) the trace records them as
    ``CACHED`` executions carrying a ``saved_cpu_hours`` property, and
    this aggregate is the fleet-wide roll-up. All zeros on corpora
    generated without the cache.
    """
    store = as_client(store)
    cached = 0
    total = 0
    saved = 0.0
    for cid in context_ids:
        for execution in store.get_executions_by_context(cid):
            total += 1
            if execution.state.value == "cached":
                cached += 1
                saved += float(execution.get("saved_cpu_hours", 0.0))
    return {
        "cached_executions": cached,
        "total_executions": total,
        "cached_fraction": cached / total if total else 0.0,
        "saved_cpu_hours": saved,
    }


def failure_cost(store: MetadataStore,
                 context_ids: Iterable[int]) -> dict[str, float]:
    """Compute spent on failed executions, and upstream-of-failure cost.

    Section 3.3: "failures are not cheap" — each failure wastes its own
    cost plus everything its run's upstream already spent.
    """
    store = as_client(store)
    failed_cost = 0.0
    total_cost = 0.0
    for cid in context_ids:
        for execution in store.get_executions_by_context(cid):
            cost = float(execution.get("cpu_hours", 0.0))
            total_cost += cost
            if execution.state.value == "failed":
                failed_cost += cost
    return {
        "failed_cpu_hours": failed_cost,
        "total_cpu_hours": total_cost,
        "failed_fraction": failed_cost / total_cost if total_cost else 0.0,
    }


def retry_stats(store: MetadataStore,
                context_ids: Iterable[int]) -> dict[str, float]:
    """Retry-waste accounting from retry provenance (repro.faults).

    Every attempt is its own execution; an execution referenced by a
    later attempt's ``retry_of`` property is *superseded*. Compute then
    partitions exactly into three buckets:

    * ``useful`` — final non-FAILED attempts (the work that stuck),
    * ``wasted`` — final FAILED attempts (the retry budget ran out, or
      no policy was in force),
    * ``retried`` — superseded attempts (paid again by a retry).

    ``total_cpu_hours == useful + wasted + retried`` holds to the float
    digit, so ``repro report`` can print a reconciling waste line. On a
    corpus with no retries, ``retried`` buckets are zero and ``wasted``
    equals :func:`failure_cost`'s failed compute.
    """
    store = as_client(store)
    superseded: set[int] = set()
    executions = []
    for cid in context_ids:
        for execution in store.get_executions_by_context(cid):
            executions.append(execution)
            prior = execution.get("retry_of")
            if prior is not None:
                superseded.add(int(prior))
    useful = wasted = retried = 0.0
    n_useful = n_wasted = n_retried = 0
    max_attempt = 1
    for execution in executions:
        cost = float(execution.get("cpu_hours", 0.0))
        max_attempt = max(max_attempt, int(execution.get("attempt", 1)))
        if execution.id in superseded:
            retried += cost
            n_retried += 1
        elif execution.state.value == "failed":
            wasted += cost
            n_wasted += 1
        else:
            useful += cost
            n_useful += 1
    total = useful + wasted + retried
    return {
        "total_cpu_hours": total,
        "useful_cpu_hours": useful,
        "wasted_cpu_hours": wasted,
        "retried_cpu_hours": retried,
        "retried_executions": n_retried,
        "failed_executions": n_wasted,
        "useful_executions": n_useful,
        "max_attempt": max_attempt,
        "retry_amplification": (retried + useful) / useful
        if useful else 0.0,
    }
