"""Distribution summaries used across the analyses.

The paper presents results as PDFs, CDFs, bucketed histograms (Table 1's
similarity ranges), and per-group breakdowns; these helpers compute those
summaries as plain data that the reporting layer renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DistributionSummary:
    """Summary statistics plus a log-bucketed histogram of one sample."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p90: float
    histogram: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_values(cls, values, bins: np.ndarray | None = None,
                    log_bins: bool = False) -> "DistributionSummary":
        """Summarize values; bins default to deciles of the range."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return cls(count=0, mean=float("nan"), median=float("nan"),
                       minimum=float("nan"), maximum=float("nan"),
                       p90=float("nan"))
        if bins is None:
            if log_bins:
                positive = arr[arr > 0]
                lo = positive.min() if positive.size else 1e-3
                bins = np.geomspace(max(lo, 1e-3), max(arr.max(), lo * 10),
                                    11)
            else:
                bins = np.linspace(arr.min(), max(arr.max(),
                                                  arr.min() + 1e-9), 11)
        counts, edges = np.histogram(arr, bins=bins)
        total = counts.sum()
        histogram = {
            f"[{edges[i]:.3g}, {edges[i + 1]:.3g})":
                counts[i] / total if total else 0.0
            for i in range(len(counts))
        }
        return cls(count=int(arr.size), mean=float(arr.mean()),
                   median=float(np.median(arr)), minimum=float(arr.min()),
                   maximum=float(arr.max()),
                   p90=float(np.quantile(arr, 0.9)), histogram=histogram)


def bucket_fractions(values, edges: list[float]) -> dict[str, float]:
    """Fraction of values in each (closed-open, last closed) bucket.

    Table 1 uses the edges [0, 0.25, 0.5, 0.75, 1].
    """
    arr = np.asarray(list(values), dtype=float)
    out: dict[str, float] = {}
    if arr.size == 0:
        for lo, hi in zip(edges, edges[1:]):
            out[f"[{lo}, {hi}]"] = 0.0
        return out
    for i, (lo, hi) in enumerate(zip(edges, edges[1:])):
        if i == len(edges) - 2:
            mask = (arr > lo) & (arr <= hi) if i else (arr >= lo) & \
                (arr <= hi)
        elif i == 0:
            mask = (arr >= lo) & (arr <= hi)
        else:
            mask = (arr > lo) & (arr <= hi)
        out[f"[{lo}, {hi}]"] = float(mask.mean())
    return out


def cdf_points(values, n_points: int = 50) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return []
    qs = np.linspace(0.0, 1.0, n_points)
    return [(float(np.quantile(arr, q)), float(q)) for q in qs]
