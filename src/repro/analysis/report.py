"""One-call corpus study: run every Section 3/4 analysis on a corpus.

:func:`full_report` segments the corpus, runs all pipeline-level and
graphlet-level analyses, and returns a nested dict keyed by the paper's
artifact ids (fig3a, ..., tab2). Examples and benches consume this.
"""

from __future__ import annotations

from ..corpus.generator import Corpus
from ..graphlets import Graphlet
from ..obs.metrics import get_registry
from ..obs.tracing import span
from ..query import as_client
from . import graphlet_level, pipeline_level
from .distributions import DistributionSummary


def segment_production_pipelines(corpus: Corpus
                                 ) -> dict[int, list[Graphlet]]:
    """Graphlets of every production pipeline, keyed by context id."""
    client = as_client(corpus.store)
    with span("analysis.segment_production_pipelines"), \
            get_registry().timer("analysis.segmentation_seconds"):
        return {
            cid: client.segment_pipeline(cid)
            for cid in corpus.production_context_ids
        }


def full_report(corpus: Corpus,
                graphlets_by_pipeline: dict[int, list[Graphlet]]
                | None = None) -> dict:
    """Run the complete Section 3 + 4 analysis suite.

    Args:
        corpus: A generated (or loaded) corpus.
        graphlets_by_pipeline: Pre-segmented graphlets; segmented on the
            fly when omitted.
    """
    # One shared client: every analysis below reads the same
    # incrementally-maintained indexes instead of re-scanning the store.
    store = as_client(corpus.store)
    context_ids = corpus.production_context_ids
    if graphlets_by_pipeline is None:
        graphlets_by_pipeline = segment_production_pipelines(corpus)

    with span("analysis.full_report",
              n_pipelines=len(context_ids)), \
            get_registry().timer("analysis.full_report_seconds"):
        return _full_report(store, context_ids, graphlets_by_pipeline)


def _full_report(store, context_ids, graphlets_by_pipeline) -> dict:
    gaps = graphlet_level.inter_graphlet_gaps(graphlets_by_pipeline)
    return {
        "fig3a_lifespan": DistributionSummary.from_values(
            pipeline_level.lifespans(store, context_ids)),
        "fig3b_models_per_day": DistributionSummary.from_values(
            pipeline_level.models_per_day(store, context_ids),
            log_bins=True),
        "fig3c_feature_count": DistributionSummary.from_values(
            pipeline_level.feature_counts(store, context_ids),
            log_bins=True),
        "fig3d_lifespan_by_type": {
            family: DistributionSummary.from_values(values)
            for family, values in pipeline_level.lifespan_by_model_type(
                store, context_ids).items()
        },
        "fig3e_cadence_by_type": {
            family: DistributionSummary.from_values(values, log_bins=True)
            for family, values in pipeline_level.cadence_by_model_type(
                store, context_ids).items()
        },
        "fig3f_feature_profile": pipeline_level.feature_profile(
            store, context_ids),
        "fig4_analyzer_usage": pipeline_level.analyzer_usage(
            store, context_ids),
        "fig5_model_mix": pipeline_level.model_mix(store, context_ids),
        "fig6_operator_presence": pipeline_level.operator_presence(
            store, context_ids),
        "fig6_operator_type_presence":
            pipeline_level.operator_type_presence(store, context_ids),
        "fig7_cost_breakdown": pipeline_level.cost_breakdown(
            store, context_ids),
        "trace_sizes": DistributionSummary.from_values(
            pipeline_level.trace_sizes(store, context_ids), log_bins=True),
        "failure_cost": pipeline_level.failure_cost(store, context_ids),
        "retry_stats": pipeline_level.retry_stats(store, context_ids),
        "cached_stats": pipeline_level.cached_execution_stats(
            store, context_ids),
        "tab1_similarity": graphlet_level.similarity_table(
            graphlets_by_pipeline),
        "fig9ab_gaps": {
            "all": DistributionSummary.from_values(gaps["all"],
                                                   log_bins=True),
            "pushed": DistributionSummary.from_values(gaps["pushed"],
                                                      log_bins=True),
        },
        "fig9c_between_pushes": DistributionSummary.from_values(
            graphlet_level.graphlets_between_pushes(graphlets_by_pipeline)),
        "fig9d_cost_by_push": {
            key: DistributionSummary.from_values(values, log_bins=True)
            for key, values in graphlet_level.cost_by_push(
                graphlets_by_pipeline).items()
        },
        "fig9e_durations": DistributionSummary.from_values(
            graphlet_level.durations(graphlets_by_pipeline), log_bins=True),
        "fig9f_push_by_type": graphlet_level.push_rate_by_model_type(
            graphlets_by_pipeline),
        "unpushed_fraction": graphlet_level.unpushed_fraction(
            graphlets_by_pipeline),
        "tab2_push_vs_drift": graphlet_level.push_vs_drift_table(
            graphlets_by_pipeline),
    }
