"""Corpus analyses reproducing Sections 3 and 4 of the paper."""

from . import graphlet_level, pipeline_level
from .distributions import DistributionSummary, bucket_fractions, cdf_points
from .report import full_report, segment_production_pipelines

__all__ = [
    "DistributionSummary",
    "bucket_fractions",
    "cdf_points",
    "full_report",
    "graphlet_level",
    "pipeline_level",
    "segment_production_pipelines",
]
