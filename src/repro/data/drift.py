"""Data drift processes.

Section 4.2 of the paper finds that consecutive model updates see large
span overlap but meaningfully shifting content distributions, and that
long-running pipelines show higher data volatility. This module supplies
the drift machinery the corpus generator uses to reproduce that: a
slowly-varying random-walk state per feature, with occasional shocks
(schema-change-like events) that data validation would flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import FeatureType, Schema


@dataclass
class DriftConfig:
    """Parameters of the per-feature drift random walk.

    Attributes:
        numeric_mean_step: Std-dev of the per-step additive walk on a
            numeric feature's mean (in units of the feature's stddev).
        numeric_scale_step: Std-dev of the per-step multiplicative walk on
            a numeric feature's stddev (log-space).
        zipf_step: Std-dev of the per-step additive walk on a categorical
            feature's Zipf exponent.
        shock_probability: Per-step probability of a distribution shock
            (a large jump, modeling upstream data bugs / seasonality).
        shock_scale: Multiplier applied to step sizes during a shock.
    """

    numeric_mean_step: float = 0.02
    numeric_scale_step: float = 0.01
    numeric_weight_step: float = 0.06
    numeric_offset_step: float = 0.12
    zipf_step: float = 0.05
    shock_probability: float = 0.01
    shock_scale: float = 20.0


@dataclass
class DriftProcess:
    """Evolves a schema's generative domains over simulated time.

    The process is deterministic given the seed, so corpora are exactly
    reproducible. ``step()`` advances the walk and returns the drifted
    schema; the original schema is never mutated.

    Example:
        >>> from repro.data.generators import random_schema
        >>> rng = np.random.default_rng(0)
        >>> process = DriftProcess(random_schema(rng, n_features=4), rng)
        >>> drifted = process.step()
        >>> len(drifted) == 4
        True
    """

    schema: Schema
    rng: np.random.Generator
    config: DriftConfig = field(default_factory=DriftConfig)
    _mean_offsets: dict[str, float] = field(default_factory=dict)
    _scale_offsets: dict[str, float] = field(default_factory=dict)
    _weight_offsets: dict[str, float] = field(default_factory=dict)
    _modepos_offsets: dict[str, float] = field(default_factory=dict)
    _zipf_offsets: dict[str, float] = field(default_factory=dict)
    _steps: int = 0
    _shocks: int = 0

    def step(self) -> Schema:
        """Advance one drift step; return the drifted schema snapshot."""
        shock = self.rng.random() < self.config.shock_probability
        scale = self.config.shock_scale if shock else 1.0
        if shock:
            self._shocks += 1
        self._steps += 1
        for spec in self.schema:
            if spec.type is FeatureType.NUMERIC:
                self._mean_offsets[spec.name] = (
                    self._mean_offsets.get(spec.name, 0.0)
                    + self.rng.normal(
                        0.0, self.config.numeric_mean_step * scale)
                    * spec.numeric.stddev)
                self._scale_offsets[spec.name] = (
                    self._scale_offsets.get(spec.name, 0.0)
                    + self.rng.normal(
                        0.0, self.config.numeric_scale_step * scale))
                self._weight_offsets[spec.name] = (
                    self._weight_offsets.get(spec.name, 0.0)
                    + self.rng.normal(
                        0.0, self.config.numeric_weight_step * scale))
                self._modepos_offsets[spec.name] = (
                    self._modepos_offsets.get(spec.name, 0.0)
                    + self.rng.normal(
                        0.0, self.config.numeric_offset_step * scale))
            else:
                self._zipf_offsets[spec.name] = (
                    self._zipf_offsets.get(spec.name, 0.0)
                    + self.rng.normal(0.0, self.config.zipf_step * scale))
        return self.current()

    def current(self) -> Schema:
        """The drifted schema at the current step (no state change)."""
        drifted = []
        for spec in self.schema:
            if spec.type is FeatureType.NUMERIC:
                domain = spec.numeric.shifted(
                    self._mean_offsets.get(spec.name, 0.0),
                    float(np.exp(self._scale_offsets.get(spec.name, 0.0))),
                    weight_delta=self._weight_offsets.get(spec.name, 0.0),
                    offset_delta=self._modepos_offsets.get(spec.name, 0.0))
                drifted.append(type(spec)(name=spec.name, type=spec.type,
                                          numeric=domain))
            else:
                domain = spec.categorical.shifted(
                    self._zipf_offsets.get(spec.name, 0.0), 1.0)
                drifted.append(type(spec)(name=spec.name, type=spec.type,
                                          categorical=domain))
        return Schema(features=drifted)

    @property
    def drift_magnitude(self) -> float:
        """Aggregate drift distance from the base schema.

        Mean absolute offset across features, in native walk units; the
        corpus generator uses this as the latent "data quality" signal
        feeding the push mechanism.
        """
        offsets = (list(self._mean_offsets.values())
                   + list(self._scale_offsets.values())
                   + list(self._weight_offsets.values())
                   + list(self._modepos_offsets.values())
                   + list(self._zipf_offsets.values()))
        if not offsets:
            return 0.0
        return float(np.mean(np.abs(offsets)))

    @property
    def shock_count(self) -> int:
        """Number of shocks the process has experienced."""
        return self._shocks
