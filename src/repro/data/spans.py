"""Data spans: the unit of data ingestion.

A *data span* (Section 2.1) is a chunk of data whose semantics depend on
the pipeline — e.g. one day of user interactions. Spans carry summary
statistics always, and materialized rows optionally (the paper's corpus
has statistics only; our real-execution path materializes small spans so
analyzers and trainers can run on actual data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import FeatureType, Schema
from .statistics import (
    SpanStatistics,
    categorical_statistics_from_values,
    numeric_statistics_from_values,
    FeatureStatistics,
)


@dataclass
class DataSpan:
    """One ingested chunk of data.

    Attributes:
        span_id: Monotonically increasing id within the pipeline; rolling
            windows select spans by this id.
        ingest_time: Simulation timestamp (hours) when the span landed.
        statistics: Summary statistics (always present).
        columns: Materialized columns, ``name -> np.ndarray``; empty in
            statistics-only mode.
    """

    span_id: int
    ingest_time: float = 0.0
    statistics: SpanStatistics = field(default_factory=SpanStatistics)
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def is_materialized(self) -> bool:
        """True when the span carries actual rows."""
        return bool(self.columns)

    @property
    def num_examples(self) -> int:
        """Number of examples in the span."""
        if self.columns:
            first = next(iter(self.columns.values()))
            return int(len(first))
        return self.statistics.num_examples

    def column(self, name: str) -> np.ndarray:
        """Return a materialized column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"span {self.span_id} has no materialized column "
                f"{name!r}") from None


def materialize_span(schema: Schema, span_id: int, num_examples: int,
                     rng: np.random.Generator,
                     ingest_time: float = 0.0) -> DataSpan:
    """Generate a fully materialized span by sampling the schema's domains.

    Numeric features are sampled from their normal domain; categorical
    features from a Zipf distribution over their (possibly huge) term
    space, with term ids as integers.
    """
    columns: dict[str, np.ndarray] = {}
    feature_stats: dict[str, FeatureStatistics] = {}
    for spec in schema:
        if spec.type is FeatureType.NUMERIC:
            domain = spec.numeric
            values = rng.normal(domain.mean, domain.stddev,
                                size=num_examples)
            if domain.mode_weight > 0:
                in_mode = rng.random(num_examples) < domain.mode_weight
                values[in_mode] += domain.mode_offset * domain.stddev
            columns[spec.name] = values
            feature_stats[spec.name] = FeatureStatistics(
                name=spec.name, type=spec.type,
                numeric=numeric_statistics_from_values(values))
        else:
            values = _sample_zipf(spec.categorical.unique_values,
                                  spec.categorical.zipf_s, num_examples, rng)
            columns[spec.name] = values
            feature_stats[spec.name] = FeatureStatistics(
                name=spec.name, type=spec.type,
                categorical=categorical_statistics_from_values(values))
    statistics = SpanStatistics(features=feature_stats,
                                num_examples=num_examples)
    return DataSpan(span_id=span_id, ingest_time=ingest_time,
                    statistics=statistics, columns=columns)


def _sample_zipf(n_terms: int, s: float, size: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Sample ``size`` term ids from a bounded Zipf(s) over [0, n_terms).

    Uses inverse-CDF over rank probabilities; for very large domains the
    rank space is capped (ranks beyond the cap carry negligible individual
    mass) and the tail is sampled uniformly, which preserves the head
    frequencies that the statistics record.
    """
    cap = min(n_terms, 100_000)
    ranks = np.arange(1, cap + 1, dtype=float)
    weights = ranks ** (-s)
    head_mass = weights.sum()
    if n_terms > cap:
        # Approximate the tail mass by the integral of r^-s over [cap, n].
        if abs(s - 1.0) < 1e-9:
            tail_mass = np.log(n_terms / cap)
        else:
            tail_mass = (n_terms ** (1 - s) - cap ** (1 - s)) / (1 - s)
        tail_mass = max(tail_mass, 0.0)
    else:
        tail_mass = 0.0
    total = head_mass + tail_mass
    probs = weights / total
    tail_prob = tail_mass / total
    choices = rng.random(size)
    cdf = np.cumsum(probs)
    head_idx = np.searchsorted(cdf, choices)
    out = head_idx.astype(np.int64)
    in_tail = head_idx >= cap
    if tail_prob > 0 and in_tail.any():
        out[in_tail] = rng.integers(cap, n_terms, size=int(in_tail.sum()))
    else:
        out = np.minimum(out, cap - 1)
    return out


def rolling_window(spans: list[DataSpan], newest_span_id: int,
                   window: int) -> list[DataSpan]:
    """Select the rolling window of spans ending at ``newest_span_id``.

    Returns up to ``window`` spans with ids in
    ``(newest_span_id - window, newest_span_id]``, ordered by span id —
    the coarser-granularity reassembly pattern described in Section 2.1.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    lo = newest_span_id - window
    selected = [s for s in spans if lo < s.span_id <= newest_span_id]
    return sorted(selected, key=lambda s: s.span_id)
