"""Feature schemas for pipeline input data.

The paper distinguishes two feature kinds (Section 3.2): *numerical*
(e.g. length of a video) and *categorical/sparse* (e.g. video id, query
text), with ~53% of features categorical on average and categorical
domains averaging 10.6M unique values. A :class:`Schema` captures a
pipeline's feature space; data spans are generated against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FeatureType(enum.Enum):
    """Kind of a feature as treated in training (not its encoding)."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass
class NumericDomain:
    """Generative parameters of a numeric feature.

    Values are modeled as a two-component normal mixture: a main component
    at ``mean`` and a secondary component offset by ``mode_offset``
    standard deviations carrying ``mode_weight`` of the mass. With
    ``mode_weight == 0`` this is a plain normal. The mixture matters for
    drift realism: span statistics rescale the value range to [0, 1]
    (Appendix B), so a pure location/scale walk leaves the standardized
    histogram unchanged — only *shape* changes (here: the mixture weight
    and separation) are observable, exactly as with real drifting data.
    """

    mean: float = 0.0
    stddev: float = 1.0
    mode_weight: float = 0.0
    mode_offset: float = 0.0

    def shifted(self, mean_delta: float, stddev_scale: float,
                weight_delta: float = 0.0,
                offset_delta: float = 0.0) -> "NumericDomain":
        """Return a drifted copy of this domain."""
        return NumericDomain(
            mean=self.mean + mean_delta,
            stddev=max(1e-6, self.stddev * stddev_scale),
            mode_weight=float(min(max(self.mode_weight + weight_delta, 0.0),
                                  0.5)),
            mode_offset=self.mode_offset + offset_delta)


@dataclass
class CategoricalDomain:
    """Generative parameters of a categorical/sparse feature.

    Term frequencies follow a Zipf law with exponent ``zipf_s`` over
    ``unique_values`` terms — the standard model for id-like and text-token
    features, and the regime in which the paper's vocabulary (top-K)
    analysis is expensive.
    """

    unique_values: int = 1000
    zipf_s: float = 1.2

    def shifted(self, zipf_delta: float, unique_scale: float
                ) -> "CategoricalDomain":
        """Return a drifted copy of this domain."""
        return CategoricalDomain(
            unique_values=max(11, int(self.unique_values * unique_scale)),
            zipf_s=max(0.2, self.zipf_s + zipf_delta))


@dataclass
class FeatureSpec:
    """One feature: a name, a kind, and a generative domain."""

    name: str
    type: FeatureType
    numeric: NumericDomain | None = None
    categorical: CategoricalDomain | None = None

    def __post_init__(self) -> None:
        if self.type is FeatureType.NUMERIC and self.numeric is None:
            self.numeric = NumericDomain()
        if self.type is FeatureType.CATEGORICAL and self.categorical is None:
            self.categorical = CategoricalDomain()

    @property
    def is_categorical(self) -> bool:
        """True for categorical/sparse features."""
        return self.type is FeatureType.CATEGORICAL


@dataclass
class Schema:
    """The feature space of a pipeline's input data.

    Attributes:
        features: Ordered feature specs; order is stable across spans.
    """

    features: list[FeatureSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.features)

    def __iter__(self):
        return iter(self.features)

    @property
    def feature_names(self) -> list[str]:
        """Names of all features, in schema order."""
        return [f.name for f in self.features]

    @property
    def num_categorical(self) -> int:
        """Count of categorical features."""
        return sum(1 for f in self.features if f.is_categorical)

    @property
    def num_numeric(self) -> int:
        """Count of numeric features."""
        return len(self.features) - self.num_categorical

    @property
    def categorical_fraction(self) -> float:
        """Fraction of features that are categorical (paper avg: 0.53)."""
        if not self.features:
            return 0.0
        return self.num_categorical / len(self.features)

    @property
    def mean_domain_size(self) -> float:
        """Mean unique-value count across categorical features.

        The paper reports 10.6M on average (13.6M for DNN pipelines,
        >20M for linear pipelines).
        """
        sizes = [f.categorical.unique_values for f in self.features
                 if f.is_categorical]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def feature(self, name: str) -> FeatureSpec:
        """Return the feature spec with the given name."""
        for spec in self.features:
            if spec.name == name:
                return spec
        raise KeyError(f"no feature named {name!r}")
