"""Random schema and statistics-only span generation.

Two generation paths exist:

* :func:`repro.data.spans.materialize_span` samples actual rows — used by
  the real-execution path (examples, operator tests).
* :func:`synthesize_span_statistics` computes a span's summary statistics
  *analytically* from the schema's generative domains (plus sampling
  noise) — used by the corpus generator, which must emit hundreds of
  thousands of spans quickly. Both paths produce the same
  :class:`~repro.data.statistics.SpanStatistics` shape, and a test
  verifies they agree in distribution.

Schema generation is calibrated to Section 3.2: the majority of pipelines
use up to 100 features with a heavy tail to tens of thousands; ~53% of
features are categorical; categorical domains average ~10.6M unique
values (lognormal across features).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr

from .schema import (
    CategoricalDomain,
    FeatureSpec,
    FeatureType,
    NumericDomain,
    Schema,
)
from .spans import DataSpan
from .statistics import (
    NUM_BINS,
    TOP_K_TERMS,
    CategoricalStatistics,
    FeatureStatistics,
    NumericStatistics,
    SpanStatistics,
)

#: Average fraction of categorical features (paper: 53%).
CATEGORICAL_FRACTION = 0.53

#: Median of the lognormal categorical domain-size distribution; chosen so
#: the mean is ~10.6M (Section 3.2) given the sigma below.
DOMAIN_SIZE_MEDIAN = 2.0e6
DOMAIN_SIZE_SIGMA = 1.83


def sample_feature_count(rng: np.random.Generator) -> int:
    """Draw a pipeline's feature count.

    Lognormal body (mode ~20, majority <= 100) with a small power-law tail
    reaching tens of thousands — Figure 3(c)/(f).
    """
    if rng.random() < 0.03:
        # Tail: pareto over [300, ~50k].
        count = int(300 * (1.0 + rng.pareto(1.1)))
        return min(count, 50_000)
    return max(1, int(rng.lognormal(mean=3.2, sigma=1.0)))


def sample_domain_size(rng: np.random.Generator,
                       scale: float = 1.0) -> int:
    """Draw a categorical feature's unique-value count.

    ``scale`` lets archetypes shift the distribution (the paper reports
    13.6M average for DNN pipelines and >20M for linear pipelines).
    """
    size = rng.lognormal(mean=math.log(DOMAIN_SIZE_MEDIAN * scale),
                         sigma=DOMAIN_SIZE_SIGMA)
    return max(11, int(size))


def random_schema(rng: np.random.Generator,
                  n_features: int | None = None,
                  categorical_fraction: float = CATEGORICAL_FRACTION,
                  domain_scale: float = 1.0) -> Schema:
    """Generate a random pipeline schema.

    Args:
        rng: Source of randomness (corpus generation is seed-stable).
        n_features: Fixed feature count, or None to sample per the paper's
            distribution.
        categorical_fraction: Expected fraction of categorical features.
        domain_scale: Multiplier on categorical domain sizes.
    """
    if n_features is None:
        n_features = sample_feature_count(rng)
    features = []
    for index in range(n_features):
        if rng.random() < categorical_fraction:
            features.append(FeatureSpec(
                name=f"f{index:05d}",
                type=FeatureType.CATEGORICAL,
                categorical=CategoricalDomain(
                    unique_values=sample_domain_size(rng, domain_scale),
                    zipf_s=float(rng.uniform(1.05, 1.6)))))
        else:
            features.append(FeatureSpec(
                name=f"f{index:05d}",
                type=FeatureType.NUMERIC,
                numeric=NumericDomain(
                    mean=float(rng.normal(0.0, 5.0)),
                    stddev=float(rng.lognormal(0.0, 0.5)),
                    mode_weight=float(rng.uniform(0.0, 0.35)),
                    mode_offset=float(rng.uniform(1.0, 5.0)))))
    return Schema(features=features)


def _analytic_numeric_histogram(domain: NumericDomain,
                                rng: np.random.Generator,
                                noise: float) -> NumericStatistics:
    """Histogram of the domain's normal mixture, 10 bins over its range."""
    mean, stddev = domain.mean, max(domain.stddev, 1e-9)
    second_mean = mean + domain.mode_offset * stddev
    low = min(mean, second_mean) - 3.0 * stddev
    high = max(mean, second_mean) + 3.0 * stddev
    edges = np.linspace(low, high, NUM_BINS + 1)
    weight = domain.mode_weight
    cdf = ((1.0 - weight) * ndtr((edges - mean) / stddev)
           + weight * ndtr((edges - second_mean) / stddev))
    mass = np.diff(cdf)
    if noise > 0:
        mass = mass * rng.lognormal(0.0, noise, size=NUM_BINS)
    mass = np.clip(mass, 1e-12, None)
    mass = mass / mass.sum()
    return NumericStatistics(histogram=mass, low=low, high=high, count=0)


def _analytic_top_counts(domain: CategoricalDomain, num_examples: int,
                         rng: np.random.Generator,
                         noise: float) -> CategoricalStatistics:
    """Top-10 Zipf term counts without sampling the (huge) term space."""
    n = domain.unique_values
    s = domain.zipf_s
    ranks = np.arange(1, TOP_K_TERMS + 1, dtype=float)
    head = ranks ** (-s)
    # Total mass approximated by head sum + integral tail.
    cap = float(TOP_K_TERMS)
    if abs(s - 1.0) < 1e-9:
        tail = math.log(n / cap) if n > cap else 0.0
    else:
        tail = max((n ** (1 - s) - cap ** (1 - s)) / (1 - s), 0.0)
    total_mass = head.sum() + tail
    probs = head / total_mass
    counts = probs * num_examples
    if noise > 0:
        counts = counts * rng.lognormal(0.0, noise, size=TOP_K_TERMS)
    counts = np.maximum(np.sort(counts)[::-1], 0.0)
    unique = min(n, num_examples)
    return CategoricalStatistics(
        top_counts=[int(round(c)) for c in counts],
        unique_count=int(unique),
        total_count=num_examples,
        domain_size=int(n))


def synthesize_span_statistics(schema: Schema, num_examples: int,
                               rng: np.random.Generator,
                               noise: float = 0.05) -> SpanStatistics:
    """Compute a span's summary statistics analytically from the schema.

    ``noise`` injects lognormal multiplicative noise on bin masses and
    term counts to emulate finite-sample variation; with ``noise=0`` the
    statistics are the exact expectations.
    """
    features: dict[str, FeatureStatistics] = {}
    for spec in schema:
        if spec.type is FeatureType.NUMERIC:
            features[spec.name] = FeatureStatistics(
                name=spec.name, type=spec.type,
                numeric=_analytic_numeric_histogram(spec.numeric, rng,
                                                    noise))
        else:
            features[spec.name] = FeatureStatistics(
                name=spec.name, type=spec.type,
                categorical=_analytic_top_counts(
                    spec.categorical, num_examples, rng, noise))
    return SpanStatistics(features=features, num_examples=num_examples)


def synthetic_span(schema: Schema, span_id: int, num_examples: int,
                   rng: np.random.Generator, ingest_time: float = 0.0,
                   noise: float = 0.05) -> DataSpan:
    """A statistics-only span (no materialized rows)."""
    return DataSpan(
        span_id=span_id, ingest_time=ingest_time,
        statistics=synthesize_span_statistics(schema, num_examples, rng,
                                              noise))
