"""Privacy-preserving summary statistics for data spans.

These are exactly the summaries the paper's corpus carries (Appendix B):

* numeric feature → a discrete distribution over **10 equi-width bins**,
  with the value range rescaled to [0, 1];
* categorical feature → counts of the **top-10 most frequent terms**, the
  count of unique terms, and the total number of datapoints, with terms
  anonymized.

Both forms can be *standardized* into a probability distribution on
[0, 1] (Appendix B's construction), which is what the similarity metric
and the S2JSD-LSH hashing consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import FeatureType

#: Number of histogram bins for numeric features (fixed by the paper).
NUM_BINS = 10

#: Number of retained most-frequent terms for categorical features.
TOP_K_TERMS = 10


@dataclass
class NumericStatistics:
    """Histogram summary of a numeric feature.

    Attributes:
        histogram: Probability mass over :data:`NUM_BINS` equi-width bins
            of the rescaled [0, 1] range; sums to 1 for non-empty data.
        low / high: The original (pre-rescale) value range.
        count: Number of datapoints summarized.
    """

    histogram: np.ndarray
    low: float = 0.0
    high: float = 1.0
    count: int = 0

    def __post_init__(self) -> None:
        self.histogram = np.asarray(self.histogram, dtype=float)
        if self.histogram.shape != (NUM_BINS,):
            raise ValueError(
                f"numeric histogram must have {NUM_BINS} bins, got "
                f"{self.histogram.shape}")

    def distribution(self) -> np.ndarray:
        """The standardized probability distribution over [0, 1]."""
        total = self.histogram.sum()
        if total <= 0:
            return np.full(NUM_BINS, 1.0 / NUM_BINS)
        return self.histogram / total


@dataclass
class CategoricalStatistics:
    """Anonymized term-frequency summary of a categorical feature.

    Attributes:
        top_counts: Counts of the 10 most frequent terms, descending.
            Shorter when the domain has fewer than 10 terms.
        unique_count: Number of distinct terms (the feature's domain size).
        total_count: Total number of datapoints.
    """

    top_counts: list[int] = field(default_factory=list)
    unique_count: int = 0
    total_count: int = 0
    #: Estimated size of the feature's full domain (production systems
    #: estimate this with sketches over the whole stream; a single span
    #: can only *observe* min(domain, span size) unique terms). 0 means
    #: "unknown — fall back to unique_count".
    domain_size: int = 0

    def __post_init__(self) -> None:
        self.top_counts = [int(c) for c in self.top_counts]
        if any(c < 0 for c in self.top_counts):
            raise ValueError("term counts must be non-negative")
        if sorted(self.top_counts, reverse=True) != self.top_counts:
            self.top_counts = sorted(self.top_counts, reverse=True)

    def distribution(self, num_bins: int = NUM_BINS) -> np.ndarray:
        """Standardize into a discrete distribution over [0, 1].

        Appendix B's construction: sort normalized term frequencies
        descending; give each of the N unique terms a bin of width 1/N;
        spread the non-top-10 residual mass evenly over the remaining
        N - 10 bins; then re-aggregate onto ``num_bins`` equi-width bins
        of [0, 1] so distributions of different domain sizes are
        comparable (and hashable by the LSH scheme).
        """
        n_unique = max(self.unique_count, len(self.top_counts), 1)
        total = max(self.total_count, sum(self.top_counts), 1)
        top = np.asarray(self.top_counts, dtype=float) / total
        residual = max(0.0, 1.0 - top.sum())
        n_rest = max(n_unique - len(top), 0)

        # Fast path for the common huge-domain case: all top terms fall
        # inside the first bin (term width 1/N < bin width), and the
        # residual mass is uniform over the remainder of [0, 1].
        head_width = len(top) / n_unique
        bin_width = 1.0 / num_bins
        if n_rest and head_width <= bin_width:
            out = np.empty(num_bins)
            rest_width = 1.0 - head_width
            density = residual / rest_width if rest_width > 0 else 0.0
            out[:] = density * bin_width
            out[0] = float(top.sum()) + density * (bin_width - head_width)
            s = out.sum()
            return out / s if s > 0 else np.full(num_bins, 1.0 / num_bins)

        # General path: build the implied per-term distribution as (probability, width)
        # segments over [0, 1], then integrate onto num_bins bins.
        out = np.zeros(num_bins)
        term_width = 1.0 / n_unique
        position = 0.0
        per_rest = residual / n_rest if n_rest else 0.0
        segments = [(p, term_width) for p in top]
        if n_rest:
            segments.append((per_rest * n_rest, term_width * n_rest))
        for mass, width in segments:
            if width <= 0:
                continue
            density = mass / width
            start, end = position, position + width
            first = int(start * num_bins)
            last = min(int(np.ceil(end * num_bins)), num_bins)
            for b in range(first, last):
                lo = max(start, b / num_bins)
                hi = min(end, (b + 1) / num_bins)
                if hi > lo:
                    out[b] += density * (hi - lo)
            position = end
        s = out.sum()
        if s > 0:
            out /= s
        else:
            out[:] = 1.0 / num_bins
        return out


@dataclass
class FeatureStatistics:
    """Summary of one feature in one span (tagged union by type)."""

    name: str
    type: FeatureType
    numeric: NumericStatistics | None = None
    categorical: CategoricalStatistics | None = None

    def distribution(self) -> np.ndarray:
        """The standardized distribution, regardless of feature type."""
        if self.type is FeatureType.NUMERIC:
            if self.numeric is None:
                raise ValueError(f"feature {self.name!r} missing numeric stats")
            return self.numeric.distribution()
        if self.categorical is None:
            raise ValueError(f"feature {self.name!r} missing categorical stats")
        return self.categorical.distribution()


@dataclass
class SpanStatistics:
    """Summary statistics of an entire data span.

    This is the only data-derived payload recorded in the corpus for a
    span (Section 2.2): features present, their types, and type-specific
    statistics.
    """

    features: dict[str, FeatureStatistics] = field(default_factory=dict)
    num_examples: int = 0

    @property
    def feature_count(self) -> int:
        """Number of features present in the span."""
        return len(self.features)

    @property
    def categorical_fraction(self) -> float:
        """Fraction of the span's features that are categorical."""
        if not self.features:
            return 0.0
        n_cat = sum(1 for f in self.features.values()
                    if f.type is FeatureType.CATEGORICAL)
        return n_cat / len(self.features)

    def feature_names(self) -> list[str]:
        """Names of all summarized features."""
        return list(self.features)


def numeric_statistics_from_values(values: np.ndarray) -> NumericStatistics:
    """Compute a :class:`NumericStatistics` from materialized values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return NumericStatistics(histogram=np.zeros(NUM_BINS), count=0)
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        histogram = np.zeros(NUM_BINS)
        histogram[0] = float(values.size)
    else:
        histogram, _ = np.histogram(values, bins=NUM_BINS, range=(low, high))
        histogram = histogram.astype(float)
    return NumericStatistics(histogram=histogram, low=low, high=high,
                             count=int(values.size))


def categorical_statistics_from_values(values) -> CategoricalStatistics:
    """Compute a :class:`CategoricalStatistics` from materialized terms."""
    values = list(values)
    if not values:
        return CategoricalStatistics()
    unique, counts = np.unique(np.asarray(values), return_counts=True)
    order = np.argsort(-counts)
    top = counts[order][:TOP_K_TERMS].tolist()
    return CategoricalStatistics(top_counts=top,
                                 unique_count=int(unique.size),
                                 total_count=len(values))
