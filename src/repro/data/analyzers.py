"""Feature-transformation analyzers (the first, expensive stage).

Section 3.2: feature transformations run in two stages — an *analysis*
stage computing statistics over the data (expensive reductions: top-K
vocabularies, min/max, mean/std, quantiles, custom UDFs), and an
embarrassingly-parallel apply stage. The paper's Figure 4 measures which
analyzers production pipelines use; vocabulary computation over
categorical features dominates.

This module implements the canonical analyzers over materialized columns,
plus an **incremental vocabulary analyzer** demonstrating the
incremental-view-maintenance optimization the paper calls out for rolling
windows of overlapping spans (Sections 3.2 / 4.2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .spans import DataSpan


class AnalyzerKind(enum.Enum):
    """The analyzer taxonomy of Figure 4."""

    VOCABULARY = "vocabulary"
    MIN = "min"
    MAX = "max"
    MEAN = "mean"
    STD = "std"
    QUANTILES = "quantiles"
    CUSTOM = "custom"


@dataclass
class AnalyzerResult:
    """Output of one analyzer over one feature across spans."""

    kind: AnalyzerKind
    feature: str
    value: object


class Analyzer:
    """Base class: a named reduction over a feature's values."""

    kind: AnalyzerKind

    def __init__(self, feature: str) -> None:
        self.feature = feature

    def analyze(self, spans: list[DataSpan]) -> AnalyzerResult:
        """Run the reduction over the concatenated spans."""
        values = np.concatenate(
            [span.column(self.feature) for span in spans]
        ) if spans else np.asarray([])
        return AnalyzerResult(self.kind, self.feature, self._reduce(values))

    def _reduce(self, values: np.ndarray):
        raise NotImplementedError


class MinAnalyzer(Analyzer):
    """Minimum of a numeric feature."""

    kind = AnalyzerKind.MIN

    def _reduce(self, values: np.ndarray):
        return float(values.min()) if values.size else float("nan")


class MaxAnalyzer(Analyzer):
    """Maximum of a numeric feature."""

    kind = AnalyzerKind.MAX

    def _reduce(self, values: np.ndarray):
        return float(values.max()) if values.size else float("nan")


class MeanAnalyzer(Analyzer):
    """Mean of a numeric feature (first half of the z-score transform)."""

    kind = AnalyzerKind.MEAN

    def _reduce(self, values: np.ndarray):
        return float(values.mean()) if values.size else float("nan")


class StdAnalyzer(Analyzer):
    """Standard deviation of a numeric feature."""

    kind = AnalyzerKind.STD

    def _reduce(self, values: np.ndarray):
        return float(values.std()) if values.size else float("nan")


class QuantilesAnalyzer(Analyzer):
    """Equi-probability bucket boundaries of a numeric feature."""

    kind = AnalyzerKind.QUANTILES

    def __init__(self, feature: str, num_quantiles: int = 10) -> None:
        super().__init__(feature)
        if num_quantiles < 2:
            raise ValueError("num_quantiles must be >= 2")
        self.num_quantiles = num_quantiles

    def _reduce(self, values: np.ndarray):
        if not values.size:
            return []
        qs = np.linspace(0.0, 1.0, self.num_quantiles + 1)[1:-1]
        return np.quantile(values, qs).tolist()


class VocabularyAnalyzer(Analyzer):
    """Top-K vocabulary over a categorical feature.

    The dominant analyzer in production (Figure 4): computes the K most
    frequent terms and maps them to the numeric domain [0, K). The paper
    highlights this as a large top-K query over an aggregation (K from
    hundreds of thousands to millions in practice).
    """

    kind = AnalyzerKind.VOCABULARY

    def __init__(self, feature: str, top_k: int = 1000) -> None:
        super().__init__(feature)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = top_k

    def _reduce(self, values: np.ndarray):
        if not values.size:
            return {}
        unique, counts = np.unique(values, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        top = unique[order][: self.top_k]
        return {term.item() if hasattr(term, "item") else term: index
                for index, term in enumerate(top)}


class CustomAnalyzer(Analyzer):
    """A black-box UDF analyzer (Figure 4's "custom" slice)."""

    kind = AnalyzerKind.CUSTOM

    def __init__(self, feature: str,
                 fn: Callable[[np.ndarray], object]) -> None:
        super().__init__(feature)
        self._fn = fn

    def _reduce(self, values: np.ndarray):
        return self._fn(values)


@dataclass
class IncrementalVocabularyAnalyzer:
    """Vocabulary maintenance over a sliding window of spans.

    The incremental-view-maintenance optimization the paper motivates:
    with a mean Jaccard span overlap of 0.647 between consecutive
    graphlets, recomputing the vocabulary from scratch re-scans mostly
    unchanged data. This analyzer maintains term counts and updates them
    by adding/removing only the delta spans.

    Example:
        >>> analyzer = IncrementalVocabularyAnalyzer("f", top_k=2)
        >>> # add_span / remove_span maintain counts; vocabulary() is O(V).
    """

    feature: str
    top_k: int = 1000
    _terms: np.ndarray | None = None
    _term_counts: np.ndarray | None = None
    _window: dict[int, DataSpan] = field(default_factory=dict)
    _span_uniques: dict[int, tuple] = field(default_factory=dict)

    def _apply(self, unique: np.ndarray, counts: np.ndarray,
               sign: int) -> None:
        """Merge a span's term counts into the maintained sorted arrays.

        Fully vectorized: O(V) per update where V is the vocabulary of
        the live window — independent of the window's raw data volume,
        which is the entire point of maintaining the view.
        """
        if self._terms is None or not len(self._terms):
            if sign < 0:
                raise KeyError("removing from an empty vocabulary")
            self._terms = unique.copy()
            self._term_counts = counts.astype(np.int64)
            return
        positions = np.searchsorted(self._terms, unique)
        in_range = positions < len(self._terms)
        known = np.zeros(len(unique), dtype=bool)
        known[in_range] = self._terms[positions[in_range]] \
            == unique[in_range]
        if known.all():
            # Steady state: every term already tracked — update in place.
            self._term_counts[positions] += sign * counts
        else:
            if sign < 0:
                raise KeyError("removing terms absent from the vocabulary")
            merged_terms = np.union1d(self._terms, unique)
            merged_counts = np.zeros(len(merged_terms), dtype=np.int64)
            merged_counts[np.searchsorted(merged_terms, self._terms)] \
                += self._term_counts
            merged_counts[np.searchsorted(merged_terms, unique)] \
                += sign * counts
            self._terms = merged_terms
            self._term_counts = merged_counts
        if sign < 0:
            alive = self._term_counts > 0
            if not alive.all():
                self._terms = self._terms[alive]
                self._term_counts = self._term_counts[alive]

    def add_span(self, span: DataSpan) -> None:
        """Add one span's contribution to the maintained counts."""
        if span.span_id in self._window:
            raise ValueError(f"span {span.span_id} already in window")
        unique, counts = self._unique_of(span)
        self._apply(unique, counts, +1)
        self._window[span.span_id] = span

    def remove_span(self, span_id: int) -> None:
        """Remove one span's contribution (it must be in the window)."""
        span = self._window.pop(span_id, None)
        if span is None:
            raise KeyError(f"span {span_id} not in window")
        unique, counts = self._span_uniques.pop(span_id, (None, None))
        if unique is None:
            unique, counts = np.unique(span.column(self.feature),
                                       return_counts=True)
        self._apply(unique, counts, -1)

    def _unique_of(self, span: DataSpan) -> tuple:
        """Per-span (unique terms, counts), computed once per residency."""
        cached = self._span_uniques.get(span.span_id)
        if cached is None:
            cached = np.unique(span.column(self.feature),
                               return_counts=True)
            self._span_uniques[span.span_id] = cached
        return cached

    def advance_to(self, spans: list[DataSpan]) -> int:
        """Reconcile the window to exactly ``spans``; returns delta size.

        Spans already present are untouched — only departures are removed
        and arrivals added. The return value counts spans touched, which
        the ablation bench compares against full recomputation.
        """
        target = {span.span_id: span for span in spans}
        departed = [sid for sid in self._window if sid not in target]
        arrived = [sid for sid in target if sid not in self._window]
        for sid in departed:
            self.remove_span(sid)
        for sid in arrived:
            self.add_span(target[sid])
        return len(departed) + len(arrived)

    def vocabulary(self) -> dict:
        """The current top-K vocabulary, term → index.

        Ties break by ascending term, matching
        :class:`VocabularyAnalyzer`'s batch computation. The sort is
        vectorized — this is the per-refresh cost that stays O(V log V)
        while the *count maintenance* above is O(delta).
        """
        if self._terms is None or not len(self._terms):
            return {}
        # Terms are maintained sorted ascending, so a stable sort on
        # -count breaks ties by ascending term, matching the batch path.
        order = np.argsort(-self._term_counts, kind="stable")[: self.top_k]
        return {
            term.item() if hasattr(term, "item") else term: index
            for index, term in enumerate(self._terms[order])
        }

    @property
    def window_span_ids(self) -> set[int]:
        """Span ids currently contributing to the counts."""
        return set(self._window)


#: Registry mapping analyzer kinds to classes, for corpus configuration.
ANALYZER_CLASSES: dict[AnalyzerKind, type] = {
    AnalyzerKind.VOCABULARY: VocabularyAnalyzer,
    AnalyzerKind.MIN: MinAnalyzer,
    AnalyzerKind.MAX: MaxAnalyzer,
    AnalyzerKind.MEAN: MeanAnalyzer,
    AnalyzerKind.STD: StdAnalyzer,
    AnalyzerKind.QUANTILES: QuantilesAnalyzer,
    AnalyzerKind.CUSTOM: CustomAnalyzer,
}
