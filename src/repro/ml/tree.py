"""CART decision trees (classification and regression).

A from-scratch replacement for the scikit-learn trees the paper uses via
its Random Forest / GBDT experiments (Section 5.2.2); scikit-learn is not
available in this environment. Split search is vectorized with numpy:
per candidate feature, sort the node's rows once and evaluate the
impurity of every threshold from prefix sums.

Supports ``max_features`` (random feature subsampling per node) so the
forest in :mod:`repro.ml.forest` is a proper Random Forest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: np.ndarray | float = 0.0
    n_samples: int = 0
    impurity: float = 0.0


def _gini(class_counts: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts (vectorized)."""
    totals = class_counts.sum(axis=-1, keepdims=True)
    safe = np.where(totals > 0, totals, 1)
    proportions = class_counts / safe
    return 1.0 - (proportions ** 2).sum(axis=-1)


class _BaseTree:
    """Shared recursive builder; subclasses define leaf values/impurity."""

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2,
                 min_samples_leaf: int = 1,
                 max_features: int | float | str | None = None,
                 random_state: int | None = None) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: list[_Node] = []
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    # ---- subclass hooks ------------------------------------------------

    def _node_stats(self, y: np.ndarray):
        """Return (value, impurity) summarizing the target at a node."""
        raise NotImplementedError

    def _best_split(self, x_col: np.ndarray, y: np.ndarray,
                    min_leaf: int) -> tuple[float, float]:
        """Return (gain, threshold) for the best split on one column."""
        raise NotImplementedError

    # ---- fitting -------------------------------------------------------

    def fit(self, features: np.ndarray, target: np.ndarray):
        """Grow the tree on a dense (n, d) feature matrix."""
        features = np.asarray(features, dtype=float)
        target = np.asarray(target)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if len(features) != len(target):
            raise ValueError("features and target length mismatch")
        if len(features) == 0:
            raise ValueError("cannot fit on empty data")
        self._n_features = features.shape[1]
        self._nodes = []
        self._rng = np.random.default_rng(self.random_state)
        importance = np.zeros(self._n_features)
        self._prepare_target(target)
        self._grow(features, self._encoded_target, depth=0,
                   importance=importance)
        total = importance.sum()
        self.feature_importances_ = (importance / total if total > 0
                                     else importance)
        return self

    def _prepare_target(self, target: np.ndarray) -> None:
        self._encoded_target = np.asarray(target, dtype=float)

    def _n_candidate_features(self) -> int:
        spec = self.max_features
        d = self._n_features
        if spec is None:
            return d
        if spec == "sqrt":
            return max(1, int(np.sqrt(d)))
        if spec == "log2":
            return max(1, int(np.log2(d))) if d > 1 else 1
        if isinstance(spec, float):
            return max(1, int(spec * d))
        return max(1, min(int(spec), d))

    def _grow(self, features: np.ndarray, target: np.ndarray, depth: int,
              importance: np.ndarray) -> int:
        value, impurity = self._node_stats(target)
        node = _Node(value=value, n_samples=len(target), impurity=impurity)
        index = len(self._nodes)
        self._nodes.append(node)

        if (impurity <= 1e-12
                or len(target) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)):
            return index

        k = self._n_candidate_features()
        if k < self._n_features:
            candidates = self._rng.choice(self._n_features, size=k,
                                          replace=False)
        else:
            candidates = np.arange(self._n_features)

        best_gain, best_feature, best_threshold = -1.0, -1, 0.0
        for feature_idx in candidates:
            gain, threshold = self._best_split(
                features[:, feature_idx], target, self.min_samples_leaf)
            if gain > best_gain + 1e-15:
                best_gain, best_feature, best_threshold = (
                    gain, int(feature_idx), threshold)
        if best_feature < 0 or best_gain < 0:
            return index

        mask = features[:, best_feature] <= best_threshold
        if mask.all() or not mask.any():
            return index
        node.feature = best_feature
        node.threshold = best_threshold
        importance[best_feature] += best_gain * len(target)
        node.left = self._grow(features[mask], target[mask], depth + 1,
                               importance)
        node.right = self._grow(features[~mask], target[~mask], depth + 1,
                                importance)
        return index

    # ---- inference -----------------------------------------------------

    def _leaf_values(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[1] != self._n_features:
            raise ValueError(
                f"expected (n, {self._n_features}) features")
        out = [None] * len(features)
        # Iterative routing, one node at a time, vectorized by partition.
        stack = [(0, np.arange(len(features)))]
        while stack:
            node_index, rows = stack.pop()
            node = self._nodes[node_index]
            if node.feature < 0:
                for r in rows:
                    out[r] = node.value
                continue
            mask = features[rows, node.feature] <= node.threshold
            left_rows = rows[mask]
            right_rows = rows[~mask]
            if left_rows.size:
                stack.append((node.left, left_rows))
            if right_rows.size:
                stack.append((node.right, right_rows))
        return np.asarray(out)

    @property
    def node_count(self) -> int:
        """Number of nodes in the grown tree."""
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Maximum depth of the grown tree."""
        def _depth(index: int) -> int:
            node = self._nodes[index]
            if node.feature < 0:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))
        return _depth(0) if self._nodes else 0


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini impurity.

    Example:
        >>> x = np.array([[0.0], [1.0], [2.0], [3.0]])
        >>> y = np.array([0, 0, 1, 1])
        >>> DecisionTreeClassifier().fit(x, y).predict(x).tolist()
        [0, 0, 1, 1]
    """

    def _prepare_target(self, target: np.ndarray) -> None:
        self.classes_, encoded = np.unique(target, return_inverse=True)
        self._encoded_target = encoded

    def _node_stats(self, y: np.ndarray):
        counts = np.bincount(y, minlength=len(self.classes_)).astype(float)
        total = counts.sum()
        value = counts / total if total else counts
        return value, float(_gini(counts))

    def _best_split(self, x_col: np.ndarray, y: np.ndarray,
                    min_leaf: int) -> tuple[float, float]:
        order = np.argsort(x_col, kind="stable")
        xs = x_col[order]
        ys = y[order]
        n = len(ys)
        n_classes = len(self.classes_)
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), ys] = 1.0
        prefix = np.cumsum(one_hot, axis=0)
        total = prefix[-1]
        # Valid split positions: after index i (left = [0..i]), where the
        # value changes and both sides satisfy min_samples_leaf.
        positions = np.arange(min_leaf - 1, n - min_leaf)
        if positions.size == 0:
            return -1.0, 0.0
        valid = xs[positions] < xs[positions + 1]
        positions = positions[valid]
        if positions.size == 0:
            return -1.0, 0.0
        left_counts = prefix[positions]
        right_counts = total - left_counts
        left_sizes = positions + 1
        right_sizes = n - left_sizes
        parent_impurity = float(_gini(total))
        child = (left_sizes * _gini(left_counts)
                 + right_sizes * _gini(right_counts)) / n
        gains = parent_impurity - child
        best = int(np.argmax(gains))
        if gains[best] < 0:
            return -1.0, 0.0
        # Zero-gain splits are allowed (ties still shrink the node), so
        # parity-style targets like XOR remain learnable.
        pos = positions[best]
        threshold = (xs[pos] + xs[pos + 1]) / 2.0
        return float(max(gains[best], 0.0)), float(threshold)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-probability estimates (leaf class frequencies)."""
        return np.vstack(self._leaf_values(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        probabilities = self.predict_proba(features)
        return self.classes_[np.argmax(probabilities, axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with variance reduction."""

    def _node_stats(self, y: np.ndarray):
        return float(y.mean()), float(y.var())

    def _best_split(self, x_col: np.ndarray, y: np.ndarray,
                    min_leaf: int) -> tuple[float, float]:
        order = np.argsort(x_col, kind="stable")
        xs = x_col[order]
        ys = y[order]
        n = len(ys)
        prefix_sum = np.cumsum(ys)
        prefix_sq = np.cumsum(ys ** 2)
        positions = np.arange(min_leaf - 1, n - min_leaf)
        if positions.size == 0:
            return -1.0, 0.0
        valid = xs[positions] < xs[positions + 1]
        positions = positions[valid]
        if positions.size == 0:
            return -1.0, 0.0
        left_n = positions + 1
        right_n = n - left_n
        left_sum = prefix_sum[positions]
        right_sum = prefix_sum[-1] - left_sum
        left_sq = prefix_sq[positions]
        right_sq = prefix_sq[-1] - left_sq
        left_var = left_sq / left_n - (left_sum / left_n) ** 2
        right_var = right_sq / right_n - (right_sum / right_n) ** 2
        parent_var = float(ys.var())
        child = (left_n * left_var + right_n * right_var) / n
        gains = parent_var - child
        best = int(np.argmax(gains))
        if gains[best] <= 1e-15:
            return -1.0, 0.0
        pos = positions[best]
        threshold = (xs[pos] + xs[pos + 1]) / 2.0
        return float(gains[best]), float(threshold)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted regression values."""
        return self._leaf_values(features).astype(float)
