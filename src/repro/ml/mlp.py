"""A small multi-layer perceptron (the corpus's "DNN" model family).

~60% of the paper's pipelines train deep models (Figure 5). On the
real-execution path our Trainer operator fits this numpy MLP for
DNN-flavored pipelines: fully-connected ReLU layers trained with
mini-batch Adam on the logistic (classification) or squared
(regression) loss.
"""

from __future__ import annotations

import numpy as np


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class MLPClassifier:
    """Binary MLP classifier trained with Adam.

    Args:
        hidden_sizes: Widths of the hidden ReLU layers.
        learning_rate: Adam step size.
        n_epochs: Passes over the training data.
        batch_size: Mini-batch size.
        l2: L2 weight penalty.
        random_state: Seed for init and shuffling.

    Example:
        >>> rng = np.random.default_rng(0)
        >>> x = rng.normal(size=(400, 2))
        >>> y = ((x ** 2).sum(axis=1) > 1.2).astype(int)  # non-linear
        >>> clf = MLPClassifier(hidden_sizes=(16,), n_epochs=60,
        ...                     random_state=0).fit(x, y)
        >>> float((clf.predict(x) == y).mean()) > 0.85
        True
    """

    def __init__(self, hidden_sizes: tuple[int, ...] = (32, 16),
                 learning_rate: float = 1e-2, n_epochs: int = 30,
                 batch_size: int = 64, l2: float = 1e-5,
                 random_state: int | None = None) -> None:
        if not hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.random_state = random_state
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.classes_: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    # ------------------------------------------------------------------

    def _init_params(self, n_features: int,
                     rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden_sizes, 1]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, limit,
                                            size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, x: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [x]
        out = x
        for w, b in zip(self.weights_[:-1], self.biases_[:-1]):
            out = _relu(out @ w + b)
            activations.append(out)
        logits = (out @ self.weights_[-1] + self.biases_[-1]).ravel()
        return activations, logits

    def fit(self, features: np.ndarray,
            target: np.ndarray, warm_start_from: "MLPClassifier | None" = None
            ) -> "MLPClassifier":
        """Fit the network; optionally warm-start from another MLP.

        Warm-starting (the paper's Section 4.1 pattern where a previous
        model seeds the next Trainer execution) copies the donor's
        parameters when layer shapes match.
        """
        x = np.asarray(features, dtype=float)
        target = np.asarray(target)
        self.classes_ = np.unique(target)
        if len(self.classes_) > 2:
            raise ValueError("only binary classification is supported")
        y = (target == self.classes_[-1]).astype(float)
        rng = np.random.default_rng(self.random_state)
        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        x = (x - self._mean) / self._scale
        self._init_params(x.shape[1], rng)
        if warm_start_from is not None and warm_start_from.weights_:
            donor_w = warm_start_from.weights_
            donor_b = warm_start_from.biases_
            if all(dw.shape == w.shape
                   for dw, w in zip(donor_w, self.weights_)):
                self.weights_ = [dw.copy() for dw in donor_w]
                self.biases_ = [db.copy() for db in donor_b]

        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        n = len(x)
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, yb = x[batch], y[batch]
                activations, logits = self._forward(xb)
                probs = _sigmoid(logits)
                # Backprop of the mean logistic loss.
                delta = ((probs - yb) / len(batch)).reshape(-1, 1)
                grads_w = [None] * len(self.weights_)
                grads_b = [None] * len(self.biases_)
                for layer in reversed(range(len(self.weights_))):
                    a_prev = activations[layer]
                    grads_w[layer] = (a_prev.T @ delta
                                      + self.l2 * self.weights_[layer])
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = delta @ self.weights_[layer].T
                        delta = delta * (activations[layer] > 0)
                step += 1
                for layer in range(len(self.weights_)):
                    for params, grads, m, v in (
                            (self.weights_, grads_w, m_w, v_w),
                            (self.biases_, grads_b, m_b, v_b)):
                        m[layer] = beta1 * m[layer] \
                            + (1 - beta1) * grads[layer]
                        v[layer] = beta2 * v[layer] \
                            + (1 - beta2) * grads[layer] ** 2
                        m_hat = m[layer] / (1 - beta1 ** step)
                        v_hat = v[layer] / (1 - beta2 ** step)
                        params[layer] = params[layer] - self.learning_rate \
                            * m_hat / (np.sqrt(v_hat) + eps)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw logits."""
        if not self.weights_:
            raise RuntimeError("model is not fitted")
        x = (np.asarray(features, dtype=float) - self._mean) / self._scale
        _, logits = self._forward(x)
        return logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """(n, 2) matrix of [P(class0), P(class1)]."""
        p1 = _sigmoid(self.decision_function(features))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels (original class values)."""
        p1 = _sigmoid(self.decision_function(features))
        return np.where(p1 >= 0.5, self.classes_[-1], self.classes_[0])
