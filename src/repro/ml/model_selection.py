"""Dataset splitting utilities.

Section 5.2.2 splits *by pipeline*, not by graphlet: all graphlets of a
pipeline land on the same side, so the model cannot memorize a pipeline's
push pattern, and the split targets ~80% of graphlets (not pipelines) in
training with roughly matched class balance. :func:`grouped_train_test_split`
implements exactly that.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


def train_test_split(n: int, test_fraction: float,
                     rng: np.random.Generator) -> tuple[np.ndarray,
                                                        np.ndarray]:
    """Random row split; returns (train_indices, test_indices)."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    permutation = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    return np.sort(permutation[n_test:]), np.sort(permutation[:n_test])


def grouped_train_test_split(groups, train_weight_target: float,
                             rng: np.random.Generator
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Split rows so whole groups go to one side.

    Groups (e.g. pipeline ids) are shuffled, then assigned to the training
    side until the training side holds ``train_weight_target`` of all rows
    (the paper's "~80% of the total number of graphlets").

    Returns:
        (train_indices, test_indices), each sorted ascending.
    """
    if not 0 < train_weight_target < 1:
        raise ValueError("train_weight_target must be in (0, 1)")
    groups = list(groups)
    if not groups:
        raise ValueError("cannot split an empty dataset")
    by_group: dict = defaultdict(list)
    for index, group in enumerate(groups):
        by_group[group].append(index)
    group_ids = list(by_group)
    rng.shuffle(group_ids)
    n_total = len(groups)
    train_indices: list[int] = []
    test_indices: list[int] = []
    taken = 0
    for group_id in group_ids:
        members = by_group[group_id]
        if taken < train_weight_target * n_total:
            train_indices.extend(members)
            taken += len(members)
        else:
            test_indices.extend(members)
    if not test_indices:
        # Degenerate corpora (one giant group): move the last group over.
        last = by_group[group_ids[-1]]
        last_set = set(last)
        train_indices = [i for i in train_indices if i not in last_set]
        test_indices = last
    return (np.asarray(sorted(train_indices), dtype=int),
            np.asarray(sorted(test_indices), dtype=int))


def class_balance(labels) -> dict:
    """Label → fraction, for checking split balance."""
    labels = np.asarray(list(labels))
    if labels.size == 0:
        return {}
    values, counts = np.unique(labels, return_counts=True)
    return {value.item() if hasattr(value, "item") else value:
            count / labels.size
            for value, count in zip(values, counts)}


def grouped_k_fold(groups, n_splits: int,
                   rng: np.random.Generator):
    """Yield (train_indices, test_indices) with whole groups per fold.

    Groups are shuffled and dealt round-robin into ``n_splits`` folds;
    each fold serves once as the test side. Mirrors sklearn's GroupKFold
    with randomized assignment.
    """
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    groups = list(groups)
    if not groups:
        raise ValueError("cannot split an empty dataset")
    by_group: dict = defaultdict(list)
    for index, group in enumerate(groups):
        by_group[group].append(index)
    group_ids = list(by_group)
    if len(group_ids) < n_splits:
        raise ValueError(
            f"need at least {n_splits} groups, got {len(group_ids)}")
    rng.shuffle(group_ids)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for position, group_id in enumerate(group_ids):
        folds[position % n_splits].extend(by_group[group_id])
    all_indices = set(range(len(groups)))
    for fold in folds:
        test = sorted(fold)
        train = sorted(all_indices - set(fold))
        yield (np.asarray(train, dtype=int), np.asarray(test, dtype=int))
