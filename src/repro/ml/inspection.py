"""Model inspection: permutation feature importance.

Section 5.3.3 studies which feature *groups* drive the waste-mitigation
models via ablation (retraining without a group). Permutation importance
is the complementary, retraining-free view: shuffle one feature (or
group) in the evaluation data and measure the metric drop. Both views
appear in the benches.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

#: A metric with the signature metric(y_true, y_pred) -> float.
Metric = Callable[[np.ndarray, np.ndarray], float]


def permutation_importance(model, features: np.ndarray,
                           labels: np.ndarray, metric: Metric,
                           n_repeats: int = 5,
                           groups: dict[str, Sequence[int]] | None = None,
                           rng: np.random.Generator | None = None
                           ) -> dict[str, float]:
    """Mean metric drop when a feature (or feature group) is shuffled.

    Args:
        model: Fitted estimator with ``predict``.
        features: Evaluation matrix (n, d).
        labels: Evaluation labels.
        metric: Higher-is-better score, e.g.
            :func:`repro.ml.balanced_accuracy`.
        n_repeats: Shuffles per feature (averaged).
        groups: Optional name → column indices; columns in a group are
            shuffled *together* (a one-hot block, a feature family).
            Defaults to one group per column (``"f{i}"``).
        rng: Randomness source.

    Returns:
        Group name → mean importance (baseline score − shuffled score).
        Positive values mean the model relies on the group.
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels)
    if rng is None:
        rng = np.random.default_rng(0)
    if groups is None:
        groups = {f"f{i}": [i] for i in range(features.shape[1])}
    baseline = metric(labels, model.predict(features))
    importances: dict[str, float] = {}
    for name, columns in groups.items():
        columns = list(columns)
        drops = []
        for _ in range(n_repeats):
            shuffled = features.copy()
            permutation = rng.permutation(len(features))
            shuffled[:, columns] = shuffled[permutation][:, columns]
            drops.append(baseline - metric(labels,
                                           model.predict(shuffled)))
        importances[name] = float(np.mean(drops))
    return importances


def top_features(importances: dict[str, float], k: int = 10
                 ) -> list[tuple[str, float]]:
    """The ``k`` most important groups, descending."""
    return sorted(importances.items(), key=lambda kv: -kv[1])[:k]
