"""Gradient-boosted decision trees (binary classification).

One of the "more complex models" the paper compared Random Forest against
(Section 5.2.2). Standard gradient boosting on the logistic loss:
each stage fits a shallow regression tree to the negative gradient
(residuals), with a shrinkage learning rate.
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeRegressor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class GradientBoostingClassifier:
    """Binary GBDT with logistic loss.

    Args:
        n_estimators: Number of boosting stages.
        learning_rate: Shrinkage per stage.
        max_depth: Depth of each stage's regression tree.
        min_samples_leaf: Leaf size floor per tree.
        subsample: Row fraction per stage (stochastic gradient boosting).
        random_state: Seed for subsampling and tree feature choices.
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, min_samples_leaf: int = 1,
                 subsample: float = 1.0,
                 random_state: int | None = None) -> None:
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []
        self.init_score_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, features: np.ndarray,
            target: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the boosted ensemble."""
        features = np.asarray(features, dtype=float)
        target = np.asarray(target)
        self.classes_ = np.unique(target)
        if len(self.classes_) > 2:
            raise ValueError("only binary classification is supported")
        y = (target == self.classes_[-1]).astype(float)
        rng = np.random.default_rng(self.random_state)
        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.init_score_ = float(np.log(positive_rate / (1 - positive_rate)))
        scores = np.full(len(y), self.init_score_)
        self.trees_ = []
        n = len(y)
        for _ in range(self.n_estimators):
            residuals = y - _sigmoid(scores)
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(1, int(self.subsample * n)),
                                  replace=False)
            else:
                rows = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2 ** 31 - 1)))
            tree.fit(features[rows], residuals[rows])
            self.trees_.append(tree)
            scores = scores + self.learning_rate * tree.predict(features)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw additive scores (log-odds)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=float)
        scores = np.full(len(features), self.init_score_)
        for tree in self.trees_:
            scores = scores + self.learning_rate * tree.predict(features)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """(n, 2) matrix of [P(class0), P(class1)]."""
        p1 = _sigmoid(self.decision_function(features))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels (original class values)."""
        p1 = _sigmoid(self.decision_function(features))
        return np.where(p1 >= 0.5, self.classes_[-1], self.classes_[0])
