"""Classification metrics.

Section 5 evaluates decision functions with **balanced accuracy** (the
corpus is 80/20 class-imbalanced) and sweeps the classifier threshold to
trade false positives (wasted computation) against false negatives
(stale models); the ROC machinery here feeds that sweep.
"""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, y_other: np.ndarray) -> tuple:
    y_true = np.asarray(y_true)
    y_other = np.asarray(y_other)
    if y_true.shape != y_other.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_other.shape}")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, y_other


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain accuracy: fraction of matching labels."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true: np.ndarray,
                     y_pred: np.ndarray) -> tuple[int, int, int, int]:
    """Return (tn, fp, fn, tp) for binary 0/1 labels."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return tn, fp, fn, tp


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of per-class recalls (the paper's fitness measure).

    For binary labels: (TPR + TNR) / 2. A class absent from ``y_true``
    is ignored.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    recalls = []
    for label in np.unique(y_true):
        mask = y_true == label
        recalls.append(float(np.mean(y_pred[mask] == label)))
    return float(np.mean(recalls))


def true_positive_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Recall of the positive class."""
    tn, fp, fn, tp = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if (tp + fn) else 0.0


def false_positive_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of negatives predicted positive."""
    tn, fp, fn, tp = confusion_counts(y_true, y_pred)
    return fp / (fp + tn) if (fp + tn) else 0.0


def roc_curve(y_true: np.ndarray,
              scores: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
    """ROC curve from scores: returns (fpr, tpr, thresholds).

    Thresholds are the distinct scores in descending order, with a leading
    +inf so the curve starts at (0, 0); a prediction is positive when
    ``score >= threshold``.
    """
    y_true, scores = _validate(y_true, np.asarray(scores, dtype=float))
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = y_true[order].astype(bool)
    distinct = np.r_[True, np.diff(sorted_scores) != 0]
    cut_indices = np.flatnonzero(distinct)
    tp_cum = np.cumsum(sorted_labels)
    fp_cum = np.cumsum(~sorted_labels)
    n_pos = int(tp_cum[-1])
    n_neg = int(fp_cum[-1])
    # At threshold = sorted_scores[i], all items with index <= last
    # occurrence of that score are positive.
    boundaries = np.r_[cut_indices[1:] - 1, len(scores) - 1]
    tpr = tp_cum[boundaries] / n_pos if n_pos else np.zeros(len(boundaries))
    fpr = fp_cum[boundaries] / n_neg if n_neg else np.zeros(len(boundaries))
    thresholds = sorted_scores[cut_indices]
    return (np.r_[0.0, fpr], np.r_[0.0, tpr],
            np.r_[np.inf, thresholds])


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a curve given by (x, y) points via the trapezoid rule."""
    fpr = np.asarray(fpr, dtype=float)
    tpr = np.asarray(tpr, dtype=float)
    order = np.argsort(fpr, kind="stable")
    integrate = getattr(np, "trapezoid", None) or np.trapz
    return float(integrate(tpr[order], fpr[order]))


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC of a score function."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return auc(fpr, tpr)


def log_loss(y_true: np.ndarray, probabilities: np.ndarray,
             eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted positive-class probabilities."""
    y_true, probabilities = _validate(
        y_true, np.asarray(probabilities, dtype=float))
    p = np.clip(probabilities, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))
