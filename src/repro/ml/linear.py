"""Linear models: logistic regression and ridge regression.

Logistic regression is one of the interpretable baselines of
Section 5.2.2 and is also the "Linear" model family the corpus's
pipelines train (Figure 5). Fitting is full-batch gradient descent with
Nesterov-free momentum and L2 regularization — adequate at the feature
scales involved, and dependency-free.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Args:
        learning_rate: Gradient-descent step size.
        n_iterations: Number of full-batch steps.
        l2: L2 penalty strength (0 disables).
        fit_intercept: Learn a bias term.
        tol: Early-stop when the gradient norm falls below this.

    Example:
        >>> rng = np.random.default_rng(0)
        >>> x = rng.normal(size=(300, 3))
        >>> y = (x @ np.array([2.0, -1.0, 0.5]) > 0).astype(int)
        >>> model = LogisticRegression().fit(x, y)
        >>> float((model.predict(x) == y).mean()) > 0.95
        True
    """

    def __init__(self, learning_rate: float = 0.5,
                 n_iterations: int = 500, l2: float = 1e-4,
                 fit_intercept: bool = True, tol: float = 1e-6) -> None:
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, features: np.ndarray,
            target: np.ndarray) -> "LogisticRegression":
        """Fit by gradient descent on the regularized log loss."""
        features = np.asarray(features, dtype=float)
        target = np.asarray(target)
        self.classes_ = np.unique(target)
        if len(self.classes_) > 2:
            raise ValueError("only binary classification is supported")
        y = (target == self.classes_[-1]).astype(float)
        n, d = features.shape
        # Standardize internally for conditioning; fold back afterwards.
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        x = (features - mean) / std
        w = np.zeros(d)
        b = 0.0
        velocity_w = np.zeros(d)
        velocity_b = 0.0
        momentum = 0.9
        for _ in range(self.n_iterations):
            p = _sigmoid(x @ w + b)
            error = p - y
            grad_w = x.T @ error / n + self.l2 * w
            grad_b = float(error.mean()) if self.fit_intercept else 0.0
            velocity_w = momentum * velocity_w - self.learning_rate * grad_w
            velocity_b = momentum * velocity_b - self.learning_rate * grad_b
            w = w + velocity_w
            b = b + velocity_b
            if np.linalg.norm(grad_w) < self.tol:
                break
        self.coef_ = w / std
        self.intercept_ = b - float((w / std) @ mean)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw linear scores."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(features, dtype=float) @ self.coef_ \
            + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """(n, 2) matrix of [P(class0), P(class1)]."""
        p1 = _sigmoid(self.decision_function(features))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels (original class values)."""
        p1 = _sigmoid(self.decision_function(features))
        return np.where(p1 >= 0.5, self.classes_[-1], self.classes_[0])


class RidgeRegression:
    """Closed-form L2-regularized least squares.

    Used by the real-execution Trainer for regression tasks.
    """

    def __init__(self, l2: float = 1.0, fit_intercept: bool = True) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray,
            target: np.ndarray) -> "RidgeRegression":
        """Solve (X'X + l2 I) w = X'y."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(target, dtype=float)
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = float(y.mean())
            xc = x - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(x.shape[1])
            y_mean = 0.0
            xc, yc = x, y
        gram = xc.T @ xc + self.l2 * np.eye(x.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - float(self.coef_ @ x_mean)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted values."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(features, dtype=float) @ self.coef_ \
            + self.intercept_
