"""Random Forest classifier.

The paper's chosen decision function (Section 5.2.2): "Random Forest
performed comparably with the more complex models explored by the
Auto-ML tool". Bootstrap-sampled CART trees with per-node feature
subsampling; probabilities are averaged leaf class frequencies, which is
what the threshold sweep in Section 5.3.2 operates on.
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bagged ensemble of :class:`DecisionTreeClassifier`.

    Args:
        n_estimators: Number of trees.
        max_depth: Depth cap per tree (None = unbounded).
        max_features: Per-node feature subsample ("sqrt" by default).
        min_samples_leaf: Leaf size floor.
        bootstrap: Sample rows with replacement per tree.
        random_state: Seed; the forest is fully deterministic given it.

    Example:
        >>> x = np.random.default_rng(0).normal(size=(200, 4))
        >>> y = (x[:, 0] + x[:, 1] > 0).astype(int)
        >>> forest = RandomForestClassifier(n_estimators=10, random_state=0)
        >>> float((forest.fit(x, y).predict(x) == y).mean()) > 0.9
        True
    """

    def __init__(self, n_estimators: int = 100,
                 max_depth: int | None = None,
                 max_features: int | float | str | None = "sqrt",
                 min_samples_leaf: int = 1,
                 min_samples_split: int = 2,
                 bootstrap: bool = True,
                 oob_score: bool = False,
                 random_state: int | None = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if oob_score and not bootstrap:
            raise ValueError("oob_score requires bootstrap sampling")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None
        #: Out-of-bag class probabilities per training row (rows never
        #: out of bag fall back to the in-bag ensemble estimate).
        self.oob_decision_function_: np.ndarray | None = None

    def fit(self, features: np.ndarray,
            target: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble."""
        features = np.asarray(features, dtype=float)
        target = np.asarray(target)
        if len(features) != len(target):
            raise ValueError("features and target length mismatch")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(target)
        n = len(features)
        self.trees_ = []
        importances = np.zeros(features.shape[1])
        class_index = {c: i for i, c in enumerate(self.classes_)}
        oob_sum = np.zeros((n, len(self.classes_)))
        oob_count = np.zeros(n)
        for _ in range(self.n_estimators):
            if self.bootstrap:
                rows = rng.integers(0, n, size=n)
            else:
                rows = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2 ** 31 - 1)))
            tree.fit(features[rows], target[rows])
            self.trees_.append(tree)
            importances += self._aligned_importances(tree, features.shape[1])
            if self.oob_score and self.bootstrap:
                out_mask = np.ones(n, dtype=bool)
                out_mask[rows] = False
                if out_mask.any():
                    probabilities = tree.predict_proba(features[out_mask])
                    for tree_col, cls in enumerate(tree.classes_):
                        oob_sum[out_mask, class_index[cls]] \
                            += probabilities[:, tree_col]
                    oob_count[out_mask] += 1
        total = importances.sum()
        self.feature_importances_ = (importances / total if total > 0
                                     else importances)
        if self.oob_score:
            covered = oob_count > 0
            oob = np.full((n, len(self.classes_)),
                          1.0 / len(self.classes_))
            oob[covered] = oob_sum[covered] / oob_count[covered, None]
            if not covered.all():
                oob[~covered] = self.predict_proba(features[~covered])
            self.oob_decision_function_ = oob
        return self

    def _aligned_importances(self, tree: DecisionTreeClassifier,
                             n_features: int) -> np.ndarray:
        importances = tree.feature_importances_
        if importances is None:
            return np.zeros(n_features)
        return importances

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Averaged class probabilities, columns aligned to classes_.

        Trees trained on bootstrap samples may have seen only a subset of
        classes; their probabilities are scattered into the forest's full
        class set before averaging.
        """
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        features = np.asarray(features, dtype=float)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        total = np.zeros((len(features), len(self.classes_)))
        for tree in self.trees_:
            probabilities = tree.predict_proba(features)
            for tree_col, cls in enumerate(tree.classes_):
                total[:, class_index[cls]] += probabilities[:, tree_col]
        return total / self.n_estimators

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority-vote (probability-averaged) class labels."""
        probabilities = self.predict_proba(features)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, features: np.ndarray, target: np.ndarray) -> float:
        """Plain accuracy on the given data."""
        return float(np.mean(self.predict(features) == np.asarray(target)))
