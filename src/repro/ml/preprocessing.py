"""Feature preprocessing: one-hot encoding and scaling.

Section 5.2.1 one-hot encodes model type / architecture features; the
waste-mitigation dataset builder uses :class:`OneHotEncoder` for that,
and :class:`StandardScaler` is available for the linear baselines.
"""

from __future__ import annotations

import numpy as np


class OneHotEncoder:
    """One-hot encoding of categorical columns.

    Categories are learned at fit time, sorted for determinism; unknown
    categories at transform time map to the all-zeros vector.

    Example:
        >>> enc = OneHotEncoder().fit([["a"], ["b"]])
        >>> enc.transform([["b"], ["c"]]).tolist()
        [[0.0, 1.0], [0.0, 0.0]]
    """

    def __init__(self) -> None:
        self.categories_: list[list] = []

    def fit(self, rows) -> "OneHotEncoder":
        """Learn categories per column from an (n, k) nested sequence."""
        rows = [list(r) for r in rows]
        if not rows:
            raise ValueError("cannot fit on empty data")
        n_cols = len(rows[0])
        self.categories_ = []
        for col in range(n_cols):
            values = sorted({row[col] for row in rows}, key=str)
            self.categories_.append(values)
        return self

    def transform(self, rows) -> np.ndarray:
        """Encode rows to a dense float matrix."""
        if not self.categories_:
            raise RuntimeError("encoder is not fitted")
        rows = [list(r) for r in rows]
        widths = [len(c) for c in self.categories_]
        out = np.zeros((len(rows), sum(widths)))
        offsets = np.cumsum([0] + widths[:-1])
        lookups = [
            {value: i for i, value in enumerate(values)}
            for values in self.categories_
        ]
        for r, row in enumerate(rows):
            for col, value in enumerate(row):
                index = lookups[col].get(value)
                if index is not None:
                    out[r, offsets[col] + index] = 1.0
        return out

    def fit_transform(self, rows) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(rows).transform(rows)

    @property
    def feature_names(self) -> list[str]:
        """Encoded column names, ``col{i}={value}``."""
        names = []
        for col, values in enumerate(self.categories_):
            names.extend(f"col{col}={value}" for value in values)
        return names


class StandardScaler:
    """Column-wise standardization to zero mean, unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and std."""
        x = np.asarray(features, dtype=float)
        if x.ndim != 2:
            raise ValueError("features must be 2-D")
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(features, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(features).transform(features)
