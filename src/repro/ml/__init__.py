"""From-scratch ML library (scikit-learn substitute).

Provides the model families Section 5 experiments with (Random Forest,
Logistic Regression, GBDT) and the families the corpus's own Trainers
fit on the real-execution path, plus metrics and model selection.
"""

from .boosting import GradientBoostingClassifier
from .forest import RandomForestClassifier
from .linear import LogisticRegression, RidgeRegression
from .inspection import permutation_importance, top_features
from .mlp import MLPClassifier
from .metrics import (
    accuracy,
    auc,
    balanced_accuracy,
    confusion_counts,
    false_positive_rate,
    log_loss,
    roc_auc,
    roc_curve,
    true_positive_rate,
)
from .model_selection import (
    class_balance,
    grouped_k_fold,
    grouped_train_test_split,
    train_test_split,
)
from .preprocessing import OneHotEncoder, StandardScaler
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "OneHotEncoder",
    "RandomForestClassifier",
    "RidgeRegression",
    "StandardScaler",
    "accuracy",
    "auc",
    "balanced_accuracy",
    "class_balance",
    "confusion_counts",
    "false_positive_rate",
    "grouped_k_fold",
    "grouped_train_test_split",
    "log_loss",
    "permutation_importance",
    "roc_auc",
    "roc_curve",
    "top_features",
    "train_test_split",
    "true_positive_rate",
]
