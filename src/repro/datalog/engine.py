"""Bottom-up Datalog evaluation with stratified negation.

Semi-naive evaluation within each stratum; strata are computed from the
program's dependency graph (an edge R → S when S's rules mention R, marked
"negative" when the mention is negated). Programs with negation inside a
recursive cycle are rejected, exactly as classic stratification demands.

This engine is small but complete enough to run the paper's Appendix-A
graphlet query over real traces; `repro.graphlets.datalog_rules` builds
the program and the test-suite checks it against the imperative
segmentation.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from .program import Atom, Program, Rule, Variable


class StratificationError(ValueError):
    """Raised when negation occurs inside a recursive cycle."""


def _stratify(program: Program) -> list[list[Rule]]:
    """Group rules into strata evaluated in order.

    Uses the standard algorithm: assign each IDB relation a stratum number
    s(R); for a rule head H with positive body atom B, s(H) >= s(B); with
    negated body atom B, s(H) >= s(B) + 1. Iterate to fixpoint; if a
    stratum number exceeds the relation count, the program is not
    stratifiable.
    """
    idb = program.idb_relations
    stratum: dict[str, int] = {rel: 0 for rel in idb}
    limit = len(idb) + 1
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head_rel = rule.head.relation
            for atom in rule.body:
                if atom.relation not in idb:
                    continue
                required = stratum[atom.relation] + (1 if atom.negated else 0)
                if stratum[head_rel] < required:
                    stratum[head_rel] = required
                    if stratum[head_rel] > limit:
                        raise StratificationError(
                            "negation inside a recursive cycle; program is "
                            "not stratifiable")
                    changed = True
    buckets: dict[int, list[Rule]] = defaultdict(list)
    for rule in program.rules:
        buckets[stratum[rule.head.relation]].append(rule)
    return [buckets[level] for level in sorted(buckets)]


def _substitute(terms: tuple, binding: dict[Variable, object]) -> tuple:
    return tuple(binding.get(t, t) if isinstance(t, Variable) else t
                 for t in terms)


def _match(terms: tuple, row: tuple,
           binding: dict[Variable, object]) -> dict[Variable, object] | None:
    """Extend ``binding`` so ``terms`` unify with ``row``; None on failure."""
    extended = binding
    copied = False
    for term, value in zip(terms, row):
        if isinstance(term, Variable):
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


_UNBOUND = object()


class Evaluator:
    """Evaluates a :class:`Program` to a fixpoint.

    Example:
        >>> program = Program()
        >>> program.add_fact("edge", 1, 2)
        >>> program.add_fact("edge", 2, 3)
        >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
        >>> program.add_rule(Atom("path", (x, y)), Atom("edge", (x, y)))
        >>> program.add_rule(Atom("path", (x, z)),
        ...                  Atom("edge", (x, y)), Atom("path", (y, z)))
        >>> sorted(Evaluator(program).run()["path"])
        [(1, 2), (1, 3), (2, 3)]
    """

    def __init__(self, program: Program) -> None:
        self._program = program

    def run(self) -> dict[str, set[tuple]]:
        """Evaluate and return all relations (EDB facts included)."""
        relations: dict[str, set[tuple]] = {
            name: set(rows) for name, rows in self._program.facts.items()
        }
        for rel in self._program.idb_relations:
            relations.setdefault(rel, set())
        for stratum_rules in _stratify(self._program):
            self._run_stratum(stratum_rules, relations)
        return relations

    # ------------------------------------------------------------------

    def _run_stratum(self, rules: list[Rule],
                     relations: dict[str, set[tuple]]) -> None:
        """Semi-naive iteration of one stratum to fixpoint."""
        head_rels = {rule.head.relation for rule in rules}
        delta: dict[str, set[tuple]] = {rel: set(relations.get(rel, ()))
                                        for rel in head_rels}
        # Seed: a first naive round so rules over only-EDB bodies fire.
        new_delta = self._round(rules, relations, None)
        for rel, rows in new_delta.items():
            fresh = rows - relations[rel]
            relations[rel] |= fresh
            delta[rel] = fresh
        while any(delta.values()):
            new_delta = self._round(rules, relations, delta)
            delta = {rel: set() for rel in head_rels}
            for rel, rows in new_delta.items():
                fresh = rows - relations[rel]
                relations[rel] |= fresh
                delta[rel] |= fresh

    def _round(self, rules: list[Rule], relations: dict[str, set[tuple]],
               delta: dict[str, set[tuple]] | None) -> dict[str, set[tuple]]:
        """One evaluation round; with ``delta``, require a delta atom."""
        produced: dict[str, set[tuple]] = defaultdict(set)
        for rule in rules:
            if delta is None:
                for binding in self._join(rule.body, relations, {}, None, -1):
                    produced[rule.head.relation].add(
                        _substitute(rule.head.terms, binding))
                continue
            # Semi-naive: for each positive body atom over a delta
            # relation, evaluate with that atom restricted to the delta.
            positive_positions = [
                i for i, atom in enumerate(rule.body)
                if not atom.negated and atom.relation in delta
            ]
            for position in positive_positions:
                for binding in self._join(rule.body, relations, delta,
                                          None, position):
                    produced[rule.head.relation].add(
                        _substitute(rule.head.terms, binding))
        return produced

    def _join(self, body: tuple, relations: dict[str, set[tuple]],
              delta: dict[str, set[tuple]] | None, _unused,
              delta_position: int):
        """Yield bindings satisfying the body left-to-right.

        When ``delta_position >= 0`` the atom at that index scans only the
        delta relation (semi-naive restriction); other atoms scan the full
        relation. Negated atoms filter.
        """
        bindings = [dict()]
        for index, atom in enumerate(body):
            if atom.negated:
                next_bindings = []
                rows = relations.get(atom.relation, set())
                for binding in bindings:
                    probe = _substitute(atom.terms, binding)
                    if any(isinstance(t, Variable) for t in probe):
                        raise ValueError(
                            f"negated atom {atom} not fully bound at "
                            "evaluation time")
                    if probe not in rows:
                        next_bindings.append(binding)
                bindings = next_bindings
                continue
            if index == delta_position and delta is not None:
                rows = delta.get(atom.relation, set())
            else:
                rows = relations.get(atom.relation, set())
            next_bindings = []
            for binding, row in itertools.product(bindings, rows):
                if len(row) != len(atom.terms):
                    continue
                extended = _match(atom.terms, row, binding)
                if extended is not None:
                    next_bindings.append(extended)
            bindings = next_bindings
            if not bindings:
                return
        yield from bindings


def evaluate(program: Program) -> dict[str, set[tuple]]:
    """Convenience wrapper: evaluate ``program`` and return all relations."""
    return Evaluator(program).run()
