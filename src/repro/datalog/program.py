"""AST for Datalog programs.

Appendix A of the paper defines graphlet segmentation as a recursive
Datalog query with negation; :mod:`repro.datalog.engine` evaluates such
programs bottom-up. The AST here is deliberately small: atoms over named
relations, with variables and constants, plus negated body atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Variable:
    """A logic variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = object  # Variable or any hashable constant.


@dataclass(frozen=True)
class Atom:
    """An atom ``relation(t1, ..., tn)`` with optional negation.

    Negated atoms may only appear in rule bodies and must be *safe*: every
    variable in a negated atom must also occur in a positive body atom.
    """

    relation: str
    terms: tuple
    negated: bool = False

    @property
    def variables(self) -> set[Variable]:
        """All variables appearing in the atom's terms."""
        return {t for t in self.terms if isinstance(t, Variable)}

    def __repr__(self) -> str:
        inner = f"{self.relation}({', '.join(map(repr, self.terms))})"
        return f"NOT {inner}" if self.negated else inner


@dataclass(frozen=True)
class Rule:
    """A Horn rule ``head :- body``.

    Facts are rules with an empty body and a ground head.
    """

    head: Atom
    body: tuple = ()

    def __post_init__(self) -> None:
        if self.head.negated:
            raise ValueError("rule heads cannot be negated")
        positive_vars: set[Variable] = set()
        for atom in self.body:
            if not atom.negated:
                positive_vars |= atom.variables
        for atom in self.body:
            if atom.negated and not atom.variables <= positive_vars:
                raise ValueError(
                    f"unsafe negation in rule: {self}; variables in negated "
                    "atoms must be bound by a positive atom")
        if not self.body and self.head.variables:
            raise ValueError(f"fact with unbound variables: {self.head}")

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(map(repr, self.body))}."


@dataclass
class Program:
    """A Datalog program: a list of rules plus extensional facts.

    Extensional relations (EDB) are supplied as ``facts``; intensional
    relations (IDB) are defined by ``rules``.
    """

    rules: list[Rule] = field(default_factory=list)
    facts: dict[str, set[tuple]] = field(default_factory=dict)

    def add_fact(self, relation: str, *values) -> None:
        """Add a ground tuple to an extensional relation."""
        self.facts.setdefault(relation, set()).add(tuple(values))

    def add_rule(self, head: Atom, *body: Atom) -> None:
        """Append a rule ``head :- body``."""
        self.rules.append(Rule(head, tuple(body)))

    @property
    def idb_relations(self) -> set[str]:
        """Relations defined by at least one rule head."""
        return {rule.head.relation for rule in self.rules}
