"""A small bottom-up Datalog engine with stratified negation.

Used to execute the paper's Appendix-A graphlet segmentation queries
declaratively; also a standalone substrate with its own tests.
"""

from .engine import Evaluator, StratificationError, evaluate
from .program import Atom, Program, Rule, Variable

__all__ = [
    "Atom",
    "Evaluator",
    "Program",
    "Rule",
    "StratificationError",
    "Variable",
    "evaluate",
]
