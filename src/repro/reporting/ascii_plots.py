"""ASCII histograms and curves for terminal output."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def bar_chart(items: dict[str, float], width: int = 40,
              title: str | None = None,
              value_format: str = "{:.2f}") -> str:
    """Horizontal bar chart of labeled values."""
    if not items:
        return title or ""
    max_value = max(max(items.values()), 1e-12)
    label_width = max(len(label) for label in items)
    lines = [title] if title else []
    for label, value in items.items():
        bar = "#" * max(int(round(width * value / max_value)), 0)
        lines.append(f"{label.ljust(label_width)} | "
                     f"{bar} {value_format.format(value)}")
    return "\n".join(lines)


def histogram(values, bins: int = 10, width: int = 40,
              title: str | None = None, log: bool = False) -> str:
    """ASCII histogram of a sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return title or "(no data)"
    if log:
        arr = arr[arr > 0]
        if arr.size == 0:
            return title or "(no positive data)"
        edges = np.geomspace(arr.min(), max(arr.max(), arr.min() * 1.001),
                             bins + 1)
    else:
        edges = np.linspace(arr.min(), max(arr.max(), arr.min() + 1e-9),
                            bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    labels = [f"[{edges[i]:9.3g}, {edges[i + 1]:9.3g})"
              for i in range(bins)]
    # Degenerate ranges can repeat a label; dict keys must stay unique.
    seen: dict[str, int] = {}
    items = {}
    for label, count in zip(labels, counts):
        if label in seen:
            seen[label] += 1
            label = f"{label} #{seen[label]}"
        else:
            seen[label] = 0
        items[label] = float(count)
    return bar_chart(items, width=width, title=title,
                     value_format="{:.0f}")


def curve(points: Sequence[tuple[float, float]], width: int = 60,
          height: int = 16, title: str | None = None,
          x_label: str = "x", y_label: str = "y") -> str:
    """Scatter an (x, y) curve onto a character grid."""
    if not points:
        return title or "(no data)"
    xs = np.asarray([p[0] for p in points])
    ys = np.asarray([p[1] for p in points])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [title] if title else []
    lines.append(f"{y_label} ({y_lo:.2f}..{y_hi:.2f})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_lo:.2f}..{x_hi:.2f})")
    return "\n".join(lines)
