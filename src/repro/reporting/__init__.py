"""Terminal rendering: ASCII tables, histograms, and curves."""

from .ascii_plots import bar_chart, curve, histogram
from .tables import format_table, paper_vs_measured
from .trace_viz import (render_graphlet, render_span_timeline,
                        render_trace)

__all__ = [
    "bar_chart",
    "curve",
    "format_table",
    "histogram",
    "paper_vs_measured",
    "render_graphlet",
    "render_span_timeline",
    "render_trace",
]
