"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render rows as an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``. Column widths adapt to content.
    """
    def _cell(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(rows: Sequence[tuple[str, float, float]],
                      title: str = "paper vs measured") -> str:
    """Render (metric, paper, measured) triples with a ratio column."""
    table_rows = []
    for metric, paper, measured in rows:
        ratio = measured / paper if paper else float("nan")
        table_rows.append((metric, paper, measured, ratio))
    return format_table(("metric", "paper", "measured", "ratio"),
                        table_rows, title=title)
