"""Figure-2-style trace rendering.

The paper's Figure 2 draws traces with nodes arranged left-to-right in
increasing order of finish/creation time. :func:`render_trace` produces
the text equivalent: one line per node in temporal order, with arrows
naming each execution's inputs and outputs. Intended for small traces
(the quickstart) and for debugging individual pipelines; large traces
should go through :func:`repro.mlmd.summarize_by_type` instead.
"""

from __future__ import annotations

from ..mlmd import ExecutionState, MetadataStore
from ..query import as_client


def _artifact_label(store: MetadataStore, artifact_id: int) -> str:
    artifact = store.get_artifact(artifact_id)
    extra = ""
    span_id = artifact.get("span_id")
    if span_id is not None:
        extra = f"#{span_id}"
    return f"{artifact.type_name}{extra}[{artifact.id}]"


def render_trace(store: MetadataStore, context_id: int | None = None,
                 max_nodes: int = 120) -> str:
    """Render a trace as a temporal listing of executions.

    Each line shows one execution with its inputs and outputs::

        t= 48.0h Trainer[12] ok   DataSpan#1[3], DataSpan#2[7] => Model[9]

    Args:
        store: The metadata store.
        context_id: Restrict to one pipeline's trace (None = whole
            store).
        max_nodes: Truncate after this many executions (with a marker).
    """
    store = as_client(store)
    if context_id is None:
        executions = store.get_executions()
    else:
        executions = store.get_executions_by_context(context_id)
    executions = sorted(executions, key=lambda e: (e.start_time, e.id))
    lines = []
    for execution in executions[:max_nodes]:
        inputs = ", ".join(
            _artifact_label(store, a)
            for a in store.get_input_artifact_ids(execution.id))
        outputs = ", ".join(
            _artifact_label(store, a)
            for a in store.get_output_artifact_ids(execution.id))
        status = {
            ExecutionState.COMPLETE: "ok  ",
            ExecutionState.FAILED: "FAIL",
            ExecutionState.CACHED: "HIT ",
        }.get(execution.state, execution.state.value[:4])
        line = (f"t={execution.start_time:7.1f}h "
                f"{execution.type_name}[{execution.id}] {status} ")
        if inputs:
            line += inputs + " "
        line += "=> " + (outputs if outputs else "(nothing)")
        lines.append(line)
    if len(executions) > max_nodes:
        lines.append(f"... {len(executions) - max_nodes} more executions")
    return "\n".join(lines)


def render_graphlet(graphlet) -> str:
    """Render one model graphlet's executions (Figure 8's view)."""
    store = as_client(graphlet.store)
    lines = [f"graphlet around Trainer[{graphlet.trainer_execution_id}] "
             f"({'pushed' if graphlet.pushed else 'unpushed'}, "
             f"{graphlet.total_cpu_hours:.1f} CPU-h)"]
    for execution in graphlet.executions():
        marker = " *" if execution.id == graphlet.trainer_execution_id \
            else "  "
        outputs = ", ".join(
            _artifact_label(store, a)
            for a in store.get_output_artifact_ids(execution.id)
            if a in graphlet.artifact_ids)
        lines.append(f"{marker}t={execution.start_time:7.1f}h "
                     f"{execution.type_name}[{execution.id}] => "
                     f"{outputs if outputs else '(nothing)'}")
    return "\n".join(lines)
