"""Figure-2-style trace rendering.

The paper's Figure 2 draws traces with nodes arranged left-to-right in
increasing order of finish/creation time. :func:`render_trace` produces
the text equivalent: one line per node in temporal order, with arrows
naming each execution's inputs and outputs. Intended for small traces
(the quickstart) and for debugging individual pipelines; large traces
should go through :func:`repro.mlmd.summarize_by_type` instead.

:func:`render_span_timeline` is the same idea applied to *observability*
spans (``--trace-out`` exports): the causally ordered tree of a run,
including spans adopted from fleet workers (labelled with their
``worker`` attribute), rendered via ``repro telemetry --timeline``.
"""

from __future__ import annotations

from ..mlmd import ExecutionState, MetadataStore
from ..query import as_client


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000.0:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_span_timeline(records: list[dict],
                         max_spans: int = 400) -> str:
    """Render exported span records as an indented, causal timeline.

    One line per span, children indented under parents, siblings in
    start order; offsets are relative to the earliest span. Spans
    adopted from fleet workers carry a ``worker`` attr, shown in
    brackets; spans recorded with resource attribution
    (``Tracer(resources=True)``) grow ``cpu=``/``alloc=`` columns::

          0.000s fleet.run 4.72s
          0.002s   fleet.plan 1.1ms
          0.004s   fleet.simulate 4.34s cpu=4.1s
          0.051s     fleet.shard 1.39s [shard-0000]
          ...

    Tolerant of partial exports: non-span records (headers, metrics)
    and malformed lines are skipped. A span with no parent renders as
    a root; spans whose parent id points *outside the file* (a torn
    export, a worker file read without its coordinator) are grouped
    under a synthetic ``<detached>`` root so broken causality is
    visible instead of silently blending into the real roots.
    """
    spans = []
    for record in records:
        if not isinstance(record, dict) or record.get("kind") != "span":
            continue
        try:
            float(record["start"])
            int(record["span_id"])
        except (KeyError, TypeError, ValueError):
            continue
        spans.append(record)
    if not spans:
        return "(no spans)"
    ids = {int(r["span_id"]) for r in spans}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    detached: list[dict] = []
    for record in spans:
        parent = record.get("parent_id")
        if parent is None:
            roots.append(record)
        elif int(parent) in ids:
            children.setdefault(int(parent), []).append(record)
        else:
            detached.append(record)
    origin = min(float(r["start"]) for r in spans)
    lines: list[str] = []
    truncated = 0

    def walk(record: dict, depth: int) -> None:
        nonlocal truncated
        if len(lines) >= max_spans:
            truncated += 1
            return
        start = float(record["start"])
        duration = max(0.0, float(record.get("end", start)) - start)
        attrs = record.get("attrs") or {}
        error = record.get("error")
        line = (f"{start - origin:9.3f}s {'  ' * depth}"
                f"{record.get('name', '-')} {_fmt_seconds(duration)}")
        cpu_ms = attrs.get("cpu_ms")
        if cpu_ms is not None:
            line += f" cpu={_fmt_seconds(float(cpu_ms) / 1e3)}"
        alloc_kb = attrs.get("alloc_kb")
        if alloc_kb is not None:
            line += f" alloc={float(alloc_kb):+.0f}KB"
        if attrs.get("worker"):
            line += f" [{attrs['worker']}]"
        if error:
            line += f" !{error}"
        lines.append(line)
        for child in sorted(children.get(int(record["span_id"]), []),
                            key=lambda r: (float(r["start"]),
                                           int(r["span_id"]))):
            walk(child, depth + 1)

    def span_order(record: dict):
        return (float(record["start"]), int(record["span_id"]))

    for root in sorted(roots, key=span_order):
        walk(root, 0)
    if detached and len(lines) < max_spans:
        lines.append(f"{min(float(r['start']) for r in detached) - origin:9.3f}s "
                     f"<detached> ({len(detached)} spans with missing "
                     "parents)")
        for orphan in sorted(detached, key=span_order):
            walk(orphan, 1)
    if truncated or len(lines) >= max_spans:
        hidden = len(spans) - len(lines)
        if hidden > 0:
            lines.append(f"... {hidden} more spans")
    return "\n".join(lines)


def _artifact_label(store: MetadataStore, artifact_id: int) -> str:
    artifact = store.get_artifact(artifact_id)
    extra = ""
    span_id = artifact.get("span_id")
    if span_id is not None:
        extra = f"#{span_id}"
    return f"{artifact.type_name}{extra}[{artifact.id}]"


def render_trace(store: MetadataStore, context_id: int | None = None,
                 max_nodes: int = 120) -> str:
    """Render a trace as a temporal listing of executions.

    Each line shows one execution with its inputs and outputs::

        t= 48.0h Trainer[12] ok   DataSpan#1[3], DataSpan#2[7] => Model[9]

    Args:
        store: The metadata store.
        context_id: Restrict to one pipeline's trace (None = whole
            store).
        max_nodes: Truncate after this many executions (with a marker).
    """
    store = as_client(store)
    if context_id is None:
        executions = store.get_executions()
    else:
        executions = store.get_executions_by_context(context_id)
    executions = sorted(executions, key=lambda e: (e.start_time, e.id))
    lines = []
    for execution in executions[:max_nodes]:
        inputs = ", ".join(
            _artifact_label(store, a)
            for a in store.get_input_artifact_ids(execution.id))
        outputs = ", ".join(
            _artifact_label(store, a)
            for a in store.get_output_artifact_ids(execution.id))
        status = {
            ExecutionState.COMPLETE: "ok  ",
            ExecutionState.FAILED: "FAIL",
            ExecutionState.CACHED: "HIT ",
        }.get(execution.state, execution.state.value[:4])
        line = (f"t={execution.start_time:7.1f}h "
                f"{execution.type_name}[{execution.id}] {status} ")
        if inputs:
            line += inputs + " "
        line += "=> " + (outputs if outputs else "(nothing)")
        lines.append(line)
    if len(executions) > max_nodes:
        lines.append(f"... {len(executions) - max_nodes} more executions")
    return "\n".join(lines)


def render_graphlet(graphlet) -> str:
    """Render one model graphlet's executions (Figure 8's view)."""
    store = as_client(graphlet.store)
    lines = [f"graphlet around Trainer[{graphlet.trainer_execution_id}] "
             f"({'pushed' if graphlet.pushed else 'unpushed'}, "
             f"{graphlet.total_cpu_hours:.1f} CPU-h)"]
    for execution in graphlet.executions():
        marker = " *" if execution.id == graphlet.trainer_execution_id \
            else "  "
        outputs = ", ".join(
            _artifact_label(store, a)
            for a in store.get_output_artifact_ids(execution.id)
            if a in graphlet.artifact_ids)
        lines.append(f"{marker}t={execution.start_time:7.1f}h "
                     f"{execution.type_name}[{execution.id}] => "
                     f"{outputs if outputs else '(nothing)'}")
    return "\n".join(lines)
