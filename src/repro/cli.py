"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — generate a calibrated corpus and save it to SQLite.
* ``report`` — run the full Section 3/4 analysis suite on a corpus.
* ``waste`` — train the Section 5 policy variants and print Table 3 /
  Figure 10 summaries.
* ``summarize`` — type-level summary of a pipeline's trace.
* ``diagnose`` — explain one pipeline from telemetry persisted in the
  store: critical path, top cost sinks, waste attribution, failures,
  push outcome.
* ``faults`` — corpus-wide failure/retry summary: failure kinds,
  failing operators, retry histogram, retry-waste reconciliation.
* ``dashboard`` — fleet-level report from persisted telemetry: operator
  duration distributions, graphlet cost CDF, waste share, regressions.
* ``telemetry`` — render a telemetry JSONL file produced by
  ``--metrics-out`` / ``--trace-out`` (``--timeline`` draws the causal
  span tree instead of aggregates).
* ``fleet-status`` — live (or post-mortem) status of a fleet run from
  its shard journal: per-shard progress bars, throughput, ETA, stall
  detection, and which shards a ``--resume`` would re-run.
* ``profile`` — run any other command under the sampling profiler and
  write its folded stacks (flamegraph format), e.g.
  ``repro profile --out gen.folded generate --pipelines 20``.

Every command works on a corpus database produced by ``generate``, so a
full study is::

    python -m repro generate --pipelines 100 --out corpus.db
    python -m repro report corpus.db
    python -m repro waste corpus.db

Observability flags are global: ``--metrics-out t.jsonl`` exports the
metrics registry after the command (and runs a background
:class:`~repro.obs.resources.ResourceSampler` so the export carries
process CPU/RSS/GC gauges), ``--trace-out spans.jsonl`` enables span
tracing and exports it (``--trace-resources`` additionally stamps each
span with cpu/rss/allocation deltas), ``-v``/``-vv`` raise log
verbosity and ``--quiet`` silences everything below errors::

    python -m repro generate --pipelines 20 --metrics-out t.jsonl
    python -m repro telemetry t.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .obs import configure_logging, get_logger, get_registry

_log = get_logger("cli")


def _parse_fault_options(args: argparse.Namespace):
    """Resolve --fault-plan / --retries into plan and policy objects."""
    from .faults import FaultPlan, RetryPolicy

    plan = None
    if args.fault_plan:
        plan = FaultPlan.parse(args.fault_plan, seed=args.fault_seed)
    policy = None
    if args.retries:
        # --retries N means N *extra* attempts on top of the first.
        policy = RetryPolicy(max_attempts=args.retries + 1)
    return plan, policy


def _resume_command(args: argparse.Namespace) -> str:
    """The exact ``repro generate ... --resume`` that continues this run.

    Rebuilt from the parsed args (shell-quoted) so a partial run's
    epilogue can print a copy-pasteable command carrying every flag the
    original invocation used — the journal fingerprint demands the
    same config/plan, so guessing flags is exactly what a 2am operator
    should not have to do.
    """
    import shlex

    parts = ["repro", "generate",
             "--pipelines", str(args.pipelines),
             "--seed", str(args.seed),
             "--max-graphlets", str(args.max_graphlets),
             "--out", shlex.quote(args.out)]
    if not args.telemetry:
        parts.append("--no-telemetry")
    if args.workers is not None:
        parts += ["--workers", str(args.workers)]
    if args.exec_cache:
        parts.append("--exec-cache")
    if args.fault_plan:
        parts += ["--fault-plan", shlex.quote(args.fault_plan)]
        if args.fault_seed:
            parts += ["--fault-seed", str(args.fault_seed)]
    if args.retries:
        parts += ["--retries", str(args.retries)]
    if args.profile_out is not None:
        parts += ["--profile-out", shlex.quote(args.profile_out)]
    if args.supervise:
        parts.append("--supervise")
        if args.max_attempts != 3:
            parts += ["--max-attempts", str(args.max_attempts)]
        if args.hedge_after is not None:
            parts += ["--hedge-after", str(args.hedge_after)]
        if args.fault_budget is not None:
            parts += ["--fault-budget", str(args.fault_budget)]
    if args.stall_after is not None:
        parts += ["--stall-after", str(args.stall_after)]
    parts.append("--resume")
    return " ".join(parts)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .corpus import CorpusConfig, generate_corpus
    from .mlmd import save_store

    config = CorpusConfig(n_pipelines=args.pipelines, seed=args.seed,
                          max_graphlets_per_pipeline=args.max_graphlets)
    try:
        fault_plan, retry_policy = _parse_fault_options(args)
    except (ValueError, OSError) as exc:
        _log.error("bad_fault_plan", reason=str(exc))
        return 2
    # --workers (any value, including 1), --exec-cache, or any fault /
    # resume / profile flag selects the fleet path: sharded generation
    # with per-pipeline derived seeds and a crash-safe shard journal.
    # Without these flags the legacy sequential generator runs, keeping
    # existing seeds' corpora byte-identical.
    use_fleet = (args.workers is not None or args.exec_cache
                 or args.resume or args.profile_out is not None
                 or fault_plan is not None
                 or retry_policy is not None
                 or args.supervise)
    if use_fleet:
        from .faults.journal import journal_dir_for
        from .fleet import generate_corpus_fleet

        workers = args.workers or 1
        print(f"generating {args.pipelines} pipelines "
              f"(seed {args.seed}, {workers} workers"
              f"{', exec cache' if args.exec_cache else ''}"
              f"{', faults: ' + fault_plan.describe() if fault_plan else ''}"
              f"{', supervised' if args.supervise else ''}"
              f"{', resume' if args.resume else ''}) ...")
        from .faults.journal import JournalError

        journal_dir = journal_dir_for(args.out)
        try:
            corpus, fleet = generate_corpus_fleet(
                config, workers=workers, exec_cache=args.exec_cache,
                telemetry=args.telemetry, progress=True,
                fault_plan=fault_plan, retry_policy=retry_policy,
                journal_dir=journal_dir, resume=args.resume,
                profile=args.profile_out is not None,
                supervise=args.supervise,
                max_attempts=args.max_attempts,
                stall_after=args.stall_after,
                hedge_after=args.hedge_after,
                fault_budget=args.fault_budget)
        except JournalError as exc:
            _log.error("journal_error", reason=str(exc))
            return 2
        print(f"fleet: {fleet.workers} shards in "
              f"{fleet.wall_seconds:.1f}s"
              + (f" ({fleet.resumed_shards} resumed from journal)"
                 if fleet.resumed_shards else "")
              + ("" if fleet.used_processes
                 or fleet.workers - fleet.resumed_shards <= 1
                 else " (process pool unavailable; ran in-process)"))
        print("phases: " + ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in fleet.phase_breakdown().items()))
        if fleet.spans_adopted:
            print(f"trace: {fleet.spans_adopted:,} worker spans merged "
                  f"under the run span")
        if args.profile_out is not None:
            from .obs.profiling import write_folded

            write_folded(args.profile_out, fleet.profile_folded,
                         header={"shards": fleet.workers,
                                 "samples": fleet.profile_samples})
            print(f"profile: {fleet.profile_samples:,} stack samples "
                  f"from {fleet.workers} shard(s) merged into "
                  f"{args.profile_out}")
        if fleet.exec_cache:
            print(f"exec cache: {fleet.cache_hits:,} hits / "
                  f"{fleet.cache_hits + fleet.cache_misses:,} cacheable "
                  f"({fleet.cache_hit_rate:.1%} hit rate), "
                  f"saved {fleet.saved_cpu_hours:.1f} cpu-hours")
        save_store(corpus.store, args.out)
        print(f"saved {corpus.store.num_executions:,} executions / "
              f"{corpus.store.num_artifacts:,} artifacts / "
              f"{corpus.store.num_telemetry:,} telemetry rows "
              f"to {args.out}")
        if fleet.degradation is not None \
                and (fleet.degradation.degraded
                     or fleet.degradation.reschedules
                     or fleet.degradation.hedges):
            from .fleet.supervisor import render_degradation
            print("\nsupervision:")
            print(render_degradation(fleet.degradation))
        if not fleet.complete:
            print(f"\nPARTIAL RUN: {len(fleet.failed_shards)} shard(s) "
                  f"failed ({fleet.missing_pipelines} of "
                  f"{fleet.pipelines} pipelines missing):")
            for failure in fleet.failed_shards:
                print(f"  shard {failure.shard_index} "
                      f"[pipelines {failure.start}..{failure.stop - 1}] "
                      f"{failure.kind}: {failure.message}")
            print(f"the saved store is valid but partial "
                  f"(journal: {fleet.journal_dir}); inspect with "
                  f"`repro fleet-status {args.out}`")
            print("resume with exactly:\n  " + _resume_command(args))
            return 3
        # Full run: the journal has served its purpose.
        from .faults.journal import ShardJournal
        ShardJournal(journal_dir, fingerprint="").cleanup()
    else:
        print(f"generating {args.pipelines} pipelines "
              f"(seed {args.seed}) ...")
        corpus = generate_corpus(config, progress=True,
                                 telemetry=args.telemetry)
        save_store(corpus.store, args.out)
        print(f"saved {corpus.store.num_executions:,} executions / "
              f"{corpus.store.num_artifacts:,} artifacts / "
              f"{corpus.store.num_telemetry:,} telemetry rows "
              f"to {args.out}")
    return 0


def _load(path: str):
    from .corpus import Corpus
    from .mlmd import load_store

    return Corpus.from_store(load_store(path))


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import full_report, segment_production_pipelines
    from .reporting import bar_chart, format_table

    corpus = _load(args.corpus)
    print(f"{len(corpus.production_context_ids)} production pipelines")
    graphlets = segment_production_pipelines(corpus)
    report = full_report(corpus, graphlets)
    print(f"\nlifespan: mean {report['fig3a_lifespan'].mean:.1f} d, "
          f"max {report['fig3a_lifespan'].maximum:.1f} d")
    print(f"models/day: median "
          f"{report['fig3b_models_per_day'].median:.2f}, "
          f"mean {report['fig3b_models_per_day'].mean:.2f}")
    print("\nFigure 5 — model mix:")
    print(bar_chart(dict(sorted(report["fig5_model_mix"].items(),
                                key=lambda kv: -kv[1]))))
    print("\nFigure 7 — compute-cost shares:")
    print(bar_chart(dict(sorted(report["fig7_cost_breakdown"].items(),
                                key=lambda kv: -kv[1]))))
    print("\nTable 1 — consecutive-graphlet similarity:")
    rows = [(name, *[f"{v:.1%}" for v in row["buckets"].values()],
             f"{row['mean']:.3f}")
            for name, row in report["tab1_similarity"].items()]
    print(format_table(("metric", "[0,.25]", "(.25,.5]", "(.5,.75]",
                        "(.75,1]", "mean"), rows))
    print(f"\nunpushed graphlet fraction: "
          f"{report['unpushed_fraction']:.1%}")
    cached = report["cached_stats"]
    if cached["cached_executions"]:
        print(f"cached executions: {cached['cached_executions']:,} of "
              f"{cached['total_executions']:,} "
              f"({cached['cached_fraction']:.1%}), saved "
              f"{cached['saved_cpu_hours']:.1f} cpu-hours")
    retry = report["retry_stats"]
    print(f"retry waste: {retry['total_cpu_hours']:.1f} cpu-hours total "
          f"= {retry['useful_cpu_hours']:.1f} useful "
          f"+ {retry['wasted_cpu_hours']:.1f} wasted "
          f"+ {retry['retried_cpu_hours']:.1f} retried "
          f"({retry['retried_executions']:,} superseded attempts, "
          f"max attempt {retry['max_attempt']})")
    return 0


def _cmd_waste(args: argparse.Namespace) -> int:
    from .analysis import segment_production_pipelines
    from .reporting import format_table
    from .waste import (build_waste_dataset, evaluate_policies,
                        feature_cost_index, train_all_variants)

    corpus = _load(args.corpus)
    graphlets = segment_production_pipelines(corpus)
    dataset = build_waste_dataset(graphlets)
    if dataset.n_rows < 20:
        _log.error("corpus_too_small", n_rows=dataset.n_rows,
                   required=20, corpus=args.corpus,
                   hint="generate a larger corpus first")
        return 2
    print(f"{dataset.n_rows} graphlets, "
          f"{dataset.unpushed_fraction:.0%} unpushed")
    policies = train_all_variants(dataset, n_estimators=args.trees)
    evaluation = evaluate_policies(policies, feature_cost_index(dataset))
    rows = []
    for name, policy in policies.items():
        curve = evaluation.curves[name]
        rows.append((name,
                     f"{policy.balanced_accuracy:.3f}",
                     f"{evaluation.feature_cost.get(name, float('nan')):.3f}",
                     f"{curve.waste_cut_at_freshness(0.95):.3f}"))
    print(format_table(("model", "balanced acc", "feature cost",
                        "waste cut @F>=0.95"), rows))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from .mlmd import summarize_by_type
    from .query import as_client

    corpus = _load(args.corpus)
    store = as_client(corpus.store)
    context_id = None
    if args.pipeline is not None:
        matches = [c for c in store.contexts("Pipeline")
                   if c.name == args.pipeline]
        if not matches:
            print(f"no pipeline named {args.pipeline!r}", file=sys.stderr)
            return 1
        context_id = matches[0].id
    print(summarize_by_type(store, context_id).render())
    return 0


# -------------------------------------------------- diagnose / dashboard


def _resolve_pipeline_context(store, name: str | None):
    """The Context to diagnose: by name, or the costliest production one."""
    from .query import as_client

    store = as_client(store)
    contexts = store.contexts("Pipeline")
    if name is not None:
        for context in contexts:
            if context.name == name:
                return context
        return None
    if not contexts:
        return None
    from .corpus.generator import production_context_ids_from_store

    production = set(production_context_ids_from_store(store))
    candidates = [c for c in contexts if c.id in production] or contexts

    def pipeline_cost(context) -> float:
        return sum(float(e.get("cpu_hours", 0.0))
                   for e in store.get_executions_by_context(context.id))

    return max(candidates, key=pipeline_cost)


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .mlmd import load_store
    from .obs.diagnosis import diagnose_pipeline
    from .reporting import bar_chart, format_table

    store = load_store(args.corpus)
    context = _resolve_pipeline_context(store, args.pipeline)
    if context is None:
        _log.error("pipeline_not_found", corpus=args.corpus,
                   pipeline=args.pipeline or "(none in corpus)")
        return 1
    try:
        diagnosis = diagnose_pipeline(store, context.id,
                                      graphlet_index=args.graphlet,
                                      top_k=args.top)
    except IndexError as exc:
        _log.error("graphlet_out_of_range", reason=str(exc))
        return 1

    print(f"pipeline {diagnosis.pipeline!r} (context {context.id}) — "
          f"{diagnosis.n_executions} executions, "
          f"{diagnosis.total_cpu_hours:.1f} cpu-hours, "
          f"{len(diagnosis.graphlets)} graphlets, "
          f"{diagnosis.n_pushes} pushed")

    if diagnosis.graphlets:
        rows = [(g.index, g.trainer_execution_id, g.model_type,
                 "yes" if g.pushed else "no",
                 "yes" if g.trainer_failed else "no",
                 g.n_executions, f"{g.cpu_hours:.2f}",
                 f"{g.duration_hours:.2f}")
                for g in diagnosis.graphlets]
        print()
        print(format_table(
            ("#", "trainer", "model", "pushed", "failed", "execs",
             "cpu h", "wall h"), rows, title="Graphlets"))

    if diagnosis.critical is not None:
        critical = diagnosis.critical
        rows = []
        for step, execution_id in enumerate(critical.execution_ids):
            execution = store.get_execution(execution_id)
            rows.append((step, execution.type_name, execution_id,
                         f"{execution.start_time:.2f}",
                         f"{execution.duration:.3f}",
                         f"{float(execution.get('cpu_hours', 0.0)):.3f}"))
        print()
        print(format_table(
            ("step", "operator", "exec", "start h", "dur h", "cpu h"),
            rows,
            title=f"Critical path — graphlet "
                  f"{diagnosis.target_graphlet_index}"))
        print(f"path duration {critical.duration_hours:.2f} h of "
              f"graphlet wall {critical.graphlet_duration_hours:.2f} h "
              f"(slack {critical.slack_hours:.2f} h)")

    if diagnosis.sinks:
        total = max(diagnosis.total_cpu_hours, 1e-12)
        rows = [(execution.type_name, execution.id, f"{cost:.3f}",
                 f"{cost / total:.1%}")
                for execution, cost in diagnosis.sinks]
        print()
        print(format_table(("operator", "exec", "cpu h", "share"), rows,
                           title=f"Top {len(rows)} cost sinks"))

    measured = [u for u in diagnosis.resources
                if u.cpu_fraction is not None]
    if measured:
        rows = [(u.operator, u.count, f"{u.wall_seconds:.3g}",
                 f"{u.cpu_seconds:.3g}", f"{u.cpu_fraction:.0%}",
                 "-" if u.alloc_kb is None else f"{u.alloc_kb:+,.0f}",
                 u.verdict)
                for u in measured]
        print()
        print(format_table(
            ("operator", "count", "wall s", "cpu s", "cpu%", "alloc KB",
             "verdict"), rows,
            title="Resource attribution (persisted node telemetry)"))

    if diagnosis.failures:
        rows = [(f.execution_id, f.node or "-", f.operator, f.kind,
                 f.attempt,
                 "-" if f.retry_of is None else f.retry_of,
                 (f"{f.error}: {f.message}" if f.error else f.message)
                 [:60] or "-")
                for f in diagnosis.failures[:args.top * 2]]
        print()
        print(format_table(
            ("exec", "node", "operator", "kind", "att", "retry of",
             "error"), rows,
            title=f"Failures ({len(diagnosis.failures)} failed "
                  f"executions)"))

    split = diagnosis.split
    print()
    print(bar_chart(
        {bucket: value for bucket, value in (
            ("useful", split.useful), ("wasted", split.wasted),
            ("protected", split.protected),
            ("unattributed", split.unattributed)) if value > 0},
        title="Compute attribution (cpu-hours, waste labels)"))
    print(f"attributed {split.total:.3f} of recorded "
          f"{diagnosis.total_cpu_hours:.3f} cpu-hours")
    if diagnosis.n_cached:
        print(f"cached executions: {diagnosis.n_cached} "
              f"(cache saved {diagnosis.saved_cpu_hours:.3f} cpu-hours "
              f"on top of the recorded total)")
    print(f"telemetry coverage: {diagnosis.telemetry_rows}/"
          f"{diagnosis.n_executions} executions with persisted rows "
          f"({diagnosis.telemetry_coverage:.0%})")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Summarize failure provenance and retry waste across a corpus."""
    from collections import Counter

    from .analysis.pipeline_level import retry_stats
    from .mlmd import load_store
    from .obs.diagnosis import collect_failures
    from .reporting import bar_chart, format_table

    from .query import as_client

    store = as_client(load_store(args.corpus))
    context_ids = [c.id for c in store.contexts("Pipeline")]
    kinds: Counter = Counter()
    operators: Counter = Counter()
    attempts: Counter = Counter()
    failures = []
    for context_id in context_ids:
        for record in collect_failures(store, context_id):
            failures.append(record)
            kinds[record.kind] += 1
            operators[record.operator] += 1
    for execution in store.get_executions():
        attempts[int(execution.get("attempt", 1))] += 1
    retry = retry_stats(store, context_ids)

    print(f"{len(context_ids)} pipelines, "
          f"{store.num_executions:,} executions, "
          f"{len(failures):,} failed")
    if kinds:
        print()
        print(bar_chart(dict(kinds.most_common()),
                        value_format="{:,.0f}",
                        title="Failure kinds"))
        print()
        print(bar_chart(dict(operators.most_common()),
                        value_format="{:,.0f}",
                        title="Failing operators"))
    if len(attempts) > 1:
        rows = [(attempt, f"{count:,}")
                for attempt, count in sorted(attempts.items())]
        print()
        print(format_table(("attempt", "executions"), rows,
                           title="Retry attempt histogram"))
    print()
    print(f"retry waste: {retry['total_cpu_hours']:.1f} cpu-hours total "
          f"= {retry['useful_cpu_hours']:.1f} useful "
          f"+ {retry['wasted_cpu_hours']:.1f} wasted "
          f"+ {retry['retried_cpu_hours']:.1f} retried")
    print(f"superseded attempts: {retry['retried_executions']:,}; "
          f"final failures: {retry['failed_executions']:,}; "
          f"retry amplification of useful work: "
          f"{retry['retry_amplification']:.3f}x")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from .analysis import cdf_points
    from .corpus import Corpus
    from .graphlets import segment_pipeline
    from .mlmd import load_store
    from .obs.diagnosis import (find_regressions, operator_stats,
                                pipeline_cost_split)
    from .obs.provenance import METRIC_KIND, NODE_KIND, RUN_KIND
    from .query import as_client
    from .reporting import bar_chart, curve, format_table, histogram

    store = load_store(args.corpus)
    if store.num_telemetry == 0:
        _log.error("no_persisted_telemetry", corpus=args.corpus,
                   hint="regenerate with `repro generate --telemetry`")
        return 2
    node_rows = store.get_telemetry(kind=NODE_KIND)
    run_rows = store.get_telemetry(kind=RUN_KIND)
    metric_rows = store.get_telemetry(kind=METRIC_KIND)
    corpus = Corpus.from_store(store)
    production = corpus.production_context_ids
    print(f"fleet: {len(as_client(store).contexts('Pipeline'))} pipelines "
          f"({len(production)} production), "
          f"{store.num_executions:,} executions, "
          f"{store.num_telemetry:,} telemetry rows "
          f"({len(node_rows):,} node / {len(run_rows):,} run / "
          f"{len(metric_rows):,} metric)")

    wall = operator_stats(store, metric="wall_seconds")
    cpu = operator_stats(store, metric="cpu_hours")
    if wall:
        rows = [(s.name, s.count, f"{s.total:.3g}", f"{s.p50:.3g}",
                 f"{s.p95:.3g}", f"{s.p99:.3g}")
                for s in sorted(wall.values(), key=lambda s: -s.total)]
        print()
        print(format_table(
            ("operator", "count", "total s", "p50 s", "p95 s", "p99 s"),
            rows, title="Operator wall time (persisted node telemetry)"))
        print()
        print(histogram([r.value for r in node_rows], bins=8, log=True,
                        title="Node wall-time histogram (s, log bins)"))
    if cpu:
        print()
        print(bar_chart(
            {s.name: s.total
             for s in sorted(cpu.values(), key=lambda s: -s.total)},
            title="Operator compute (cpu-hours)"))

    costs: list[float] = []
    useful = wasted = protected = unattributed = 0.0
    for context_id in production:
        graphlets = segment_pipeline(store, context_id)
        costs.extend(g.total_cpu_hours for g in graphlets)
        split = pipeline_cost_split(store, context_id, graphlets)
        useful += split.useful
        wasted += split.wasted
        protected += split.protected
        unattributed += split.unattributed
    if costs:
        print()
        print(curve(cdf_points(costs), title="Graphlet cost CDF",
                    x_label="cpu-hours", y_label="fraction"))
    fleet_total = useful + wasted + protected + unattributed
    if fleet_total > 0:
        print()
        print(bar_chart(
            {bucket: value / fleet_total for bucket, value in (
                ("useful", useful), ("wasted", wasted),
                ("protected", protected),
                ("unattributed", unattributed)) if value > 0},
            value_format="{:.1%}",
            title=f"Waste share of {fleet_total:.1f} production "
                  f"cpu-hours"))

    if args.baseline:
        baseline = load_store(args.baseline)
        if baseline.num_telemetry == 0:
            _log.error("no_persisted_telemetry", corpus=args.baseline,
                       hint="baseline lacks telemetry rows")
            return 2
        flags = find_regressions(baseline, store,
                                 threshold=args.threshold)
        print()
        if not flags:
            print(f"no operator p95 regressions vs {args.baseline} "
                  f"(threshold {args.threshold:.0%})")
        else:
            rows = [(f.operator, f.metric, f"{f.baseline_p95:.4g}",
                     f"{f.current_p95:.4g}", f"{f.ratio:.2f}x")
                    for f in flags]
            print(format_table(
                ("operator", "metric", "baseline p95", "current p95",
                 "drift"), rows,
                title=f"Regression flags vs {args.baseline} "
                      f"(threshold {args.threshold:.0%})"))
    return 0


# ------------------------------------------------------------- telemetry


def _label_text(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _num(record: dict, key: str, fmt: str = "{:.4g}") -> str:
    """Format a possibly-missing / ``None`` numeric field (``-`` then)."""
    value = record.get(key)
    if value is None:
        return "-"
    try:
        return fmt.format(float(value))
    except (TypeError, ValueError):
        return "-"


def _render_telemetry(records: list[dict]) -> str:
    """Render exported metrics/span records as tables and charts.

    Tolerant by design: partially-written exports (missing fields,
    ``None`` percentiles of empty histograms) render as ``-`` instead
    of crashing the reader.
    """
    from .reporting import bar_chart, format_table

    records = [r for r in records if isinstance(r, dict)]
    counters = [r for r in records if r.get("kind") == "counter"]
    gauges = [r for r in records if r.get("kind") == "gauge"]
    histograms = [r for r in records if r.get("kind") == "histogram"]
    spans = [r for r in records if r.get("kind") == "span"]
    sections: list[str] = []

    if counters:
        rows = [(c.get("name", "-"), _label_text(c.get("labels", {})),
                 _num(c, "value", "{:,.0f}"))
                for c in counters]
        sections.append(format_table(("counter", "labels", "value"), rows,
                                     title="Counters"))
        op_counts = {
            _label_text(c.get("labels", {})) or c.get("name", "-"):
                c.get("value", 0)
            for c in counters
            if c.get("name") == "mlmd.ops" and c.get("value", 0) > 0
        }
        if op_counts:
            sections.append(bar_chart(
                dict(sorted(op_counts.items(), key=lambda kv: -kv[1])),
                title="Store ops", value_format="{:,.0f}"))

    if gauges:
        rows = [(g.get("name", "-"), _label_text(g.get("labels", {})),
                 _num(g, "value", "{:.3f}"))
                for g in gauges]
        sections.append(format_table(("gauge", "labels", "value"), rows,
                                     title="Gauges"))

    if histograms:
        rows = [
            (h.get("name", "-"), _label_text(h.get("labels", {})),
             h.get("count", 0), _num(h, "mean"), _num(h, "p50"),
             _num(h, "p95"), _num(h, "p99"), _num(h, "sum"))
            for h in histograms
        ]
        sections.append(format_table(
            ("histogram", "labels", "count", "mean", "p50", "p95", "p99",
             "sum"), rows, title="Histograms"))

    if spans:
        by_name: dict[str, list[float]] = {}
        for record in spans:
            try:
                duration = float(record.get("duration", 0.0))
            except (TypeError, ValueError):
                continue
            by_name.setdefault(str(record.get("name", "-")),
                               []).append(duration)
        rows = []
        for name, durations in sorted(by_name.items(),
                                      key=lambda kv: -sum(kv[1])):
            ordered = sorted(durations)
            p50 = ordered[len(ordered) // 2]
            p95 = ordered[min(int(len(ordered) * 0.95),
                              len(ordered) - 1)]
            rows.append((name, len(durations), f"{sum(durations):.4g}",
                         f"{p50:.4g}", f"{p95:.4g}"))
        sections.append(format_table(
            ("span", "count", "total s", "p50 s", "p95 s"), rows,
            title="Spans"))

    if not sections:
        return "(no telemetry records)"
    return "\n\n".join(sections)


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """Render a fleet run's live/post-mortem status from its journal."""
    import time as _time
    from pathlib import Path

    from .faults.journal import journal_dir_for
    from .obs.fleetwatch import collect_fleet_status, render_fleet_status

    path = Path(args.out)
    journal_dir = path if path.name.endswith(".shards") \
        else journal_dir_for(path)
    while True:
        status = collect_fleet_status(journal_dir,
                                      stall_after=args.stall_after)
        if args.json:
            print(json.dumps(status.to_dict(), indent=2))
        else:
            print(render_fleet_status(status))
        if not args.watch or status.complete or not status.exists:
            return 0
        _time.sleep(args.watch)
        if not args.json:
            print()


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run another CLI command under the sampling profiler.

    The wrapped command executes through :func:`main` (its own obs
    flags work as usual) while a :class:`StackSampler` snapshots this
    thread; the folded stacks land in ``--out``, ready for any
    flamegraph renderer. Profile flags must precede the wrapped
    command: ``repro profile --out g.folded generate --pipelines 20``.
    """
    import threading

    from .obs.profiling import StackSampler, render_top, write_folded

    wrapped = list(args.wrapped)
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        _log.error("profile_no_command",
                   hint="repro profile [--out FILE] <command ...>")
        return 2
    if wrapped[0] == "profile":
        _log.error("profile_nested",
                   hint="profile cannot wrap itself")
        return 2
    sampler = StackSampler(interval=args.interval,
                           target_thread_ids={threading.get_ident()})
    with sampler:
        code = main(wrapped)
    counts = sampler.folded()
    try:
        write_folded(args.out, counts,
                     header={"command": " ".join(wrapped),
                             "interval_s": args.interval,
                             "wall_s": round(sampler.wall_seconds, 3)})
    except OSError as exc:
        _log.error("profile_unwritable", file=args.out,
                   reason=type(exc).__name__)
        return code or 2
    print(f"\nprofile: {sum(counts.values()):,} samples over "
          f"{sampler.wall_seconds:.1f}s -> {args.out}")
    print(render_top(counts, args.top))
    return code


def _cmd_telemetry(args: argparse.Namespace) -> int:
    records = []
    bad_lines = 0
    try:
        with open(args.file) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    bad_lines += 1
                    continue
                # A telemetry record is a JSON object; a bare scalar or
                # array is a malformed/truncated line, not a record.
                if isinstance(record, dict):
                    records.append(record)
                else:
                    bad_lines += 1
    except OSError as exc:
        _log.error("telemetry_unreadable", file=args.file,
                   reason=type(exc).__name__)
        return 2
    if bad_lines:
        _log.warning("telemetry_bad_lines", file=args.file,
                     skipped=bad_lines)
    if args.timeline:
        from .reporting import render_span_timeline
        print(render_span_timeline(records))
    else:
        print(_render_telemetry(records))
    return 0


# ---------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="export the metrics registry as JSONL "
                            "after the command")
    group.add_argument("--trace-out", metavar="FILE", default=None,
                       help="enable span tracing and export spans "
                            "as JSONL")
    group.add_argument("--trace-resources", action="store_true",
                       help="with --trace-out: stamp each span with "
                            "cpu_ms / rss_peak_mb / alloc_kb deltas "
                            "(rendered by telemetry --timeline)")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="raise log verbosity (-v info, -vv debug)")
    group.add_argument("--quiet", action="store_true",
                       help="only log errors")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Production ML Pipelines' "
                    "(SIGMOD 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", parents=[obs_flags],
                              help="generate a corpus into SQLite")
    generate.add_argument("--pipelines", type=int, default=60)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--max-graphlets", type=int, default=60)
    generate.add_argument("--out", default="corpus.db")
    generate.add_argument("--telemetry", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="persist per-execution telemetry rows "
                               "into the corpus database (default on; "
                               "--no-telemetry disables)")
    generate.add_argument("--workers", type=int, default=None,
                          metavar="N",
                          help="sharded generation across N worker "
                               "processes (fleet path: per-pipeline "
                               "derived seeds, deterministic for any "
                               "N; default: legacy sequential "
                               "generator)")
    generate.add_argument("--exec-cache", action="store_true",
                          help="enable the content-addressed execution "
                               "cache: redundant re-executions are "
                               "replayed as CACHED executions with "
                               "saved cpu-hours recorded (implies the "
                               "fleet path)")
    generate.add_argument("--fault-plan", default=None, metavar="PLAN",
                          help="inject seeded faults: a spec like "
                               "'transient:Trainer:0.05;worker_crash:1' "
                               "(kind:operator:probability), inline "
                               "JSON, or a .json file (implies the "
                               "fleet path)")
    generate.add_argument("--fault-seed", type=int, default=0,
                          help="seed for the fault plan's injection "
                               "streams (default 0; independent of "
                               "--seed so the simulated trace is "
                               "unchanged by fault sampling)")
    generate.add_argument("--retries", type=int, default=0, metavar="N",
                          help="allow N retry attempts after a failed "
                               "execution, with exponential backoff; "
                               "every attempt is persisted as its own "
                               "execution (implies the fleet path)")
    generate.add_argument("--resume", action="store_true",
                          help="resume a partial fleet run from its "
                               "shard journal (<out>.shards/): only "
                               "failed or missing shards are re-run")
    generate.add_argument("--profile-out", metavar="FILE", default=None,
                          help="sample every worker's stacks and write "
                               "the merged folded-stack profile "
                               "(flamegraph format; implies the fleet "
                               "path)")
    generate.add_argument("--supervise", action="store_true",
                          help="in-run supervision: reschedule crashed "
                               "or hung workers, hedge stragglers, and "
                               "quarantine poison shards instead of "
                               "aborting (implies the fleet path)")
    generate.add_argument("--max-attempts", type=int, default=3,
                          metavar="N",
                          help="supervised attempts per shard before "
                               "it is quarantined for this run "
                               "(default 3)")
    generate.add_argument("--stall-after", type=float, default=None,
                          metavar="SECONDS",
                          help="heartbeat silence before a supervised "
                               "worker counts as hung and is "
                               "rescheduled (default 30; also recorded "
                               "in the journal for fleet-status)")
    generate.add_argument("--hedge-after", type=float, default=None,
                          metavar="FACTOR",
                          help="hedge a straggling shard once its "
                               "attempt is older than FACTOR x the "
                               "median completed-attempt duration; "
                               "first completion wins (default: no "
                               "hedging)")
    generate.add_argument("--fault-budget", type=int, default=None,
                          metavar="N",
                          help="cap total supervised recovery attempts "
                               "(reschedules + hedges); exhaustion "
                               "quarantines the rest — fail fast on "
                               "systemic breakage (default: unlimited)")
    generate.set_defaults(fn=_cmd_generate)

    report = sub.add_parser("report", parents=[obs_flags],
                            help="run the Section 3/4 analysis suite")
    report.add_argument("corpus")
    report.set_defaults(fn=_cmd_report)

    waste = sub.add_parser("waste", parents=[obs_flags],
                           help="train the Section 5 policy variants")
    waste.add_argument("corpus")
    waste.add_argument("--trees", type=int, default=60)
    waste.set_defaults(fn=_cmd_waste)

    summarize = sub.add_parser("summarize", parents=[obs_flags],
                               help="type-level trace summary")
    summarize.add_argument("corpus")
    summarize.add_argument("--pipeline", default=None,
                           help="pipeline name (default: whole corpus)")
    summarize.set_defaults(fn=_cmd_summarize)

    diagnose = sub.add_parser("diagnose", parents=[obs_flags],
                              help="explain one pipeline: critical "
                                   "path, cost sinks, waste split")
    diagnose.add_argument("corpus")
    diagnose.add_argument("--pipeline", default=None,
                          help="pipeline name (default: costliest "
                               "production pipeline)")
    diagnose.add_argument("--graphlet", type=int, default=None,
                          help="graphlet index for the critical path "
                               "(default: most expensive graphlet)")
    diagnose.add_argument("--top", type=int, default=5,
                          help="cost sinks to show (default 5)")
    diagnose.set_defaults(fn=_cmd_diagnose)

    faults = sub.add_parser("faults", parents=[obs_flags],
                            help="summarize failure kinds, retry "
                                 "attempts, and retry waste")
    faults.add_argument("corpus")
    faults.set_defaults(fn=_cmd_faults)

    dashboard = sub.add_parser("dashboard", parents=[obs_flags],
                               help="fleet report from telemetry "
                                    "persisted in the store")
    dashboard.add_argument("corpus")
    dashboard.add_argument("--baseline", default=None,
                           help="second corpus DB to diff operator "
                                "p95s against")
    dashboard.add_argument("--threshold", type=float, default=0.2,
                           help="p95 drift fraction that flags a "
                                "regression (default 0.2)")
    dashboard.set_defaults(fn=_cmd_dashboard)

    telemetry = sub.add_parser("telemetry", parents=[obs_flags],
                               help="render an exported telemetry "
                                    "JSONL file")
    telemetry.add_argument("file")
    telemetry.add_argument("--timeline", action="store_true",
                           help="render the causal span tree (offsets, "
                                "nesting, per-worker labels) instead "
                                "of aggregate tables")
    telemetry.set_defaults(fn=_cmd_telemetry)

    fleet_status = sub.add_parser(
        "fleet-status", parents=[obs_flags],
        help="status of a fleet run from its shard journal "
             "(live or post-mortem)")
    fleet_status.add_argument(
        "out", help="the run's --out path (or its <out>.shards dir)")
    fleet_status.add_argument(
        "--stall-after", type=float, default=None, metavar="SECONDS",
        help="heartbeat silence that flags a running shard as stalled "
             "(default: the threshold the run recorded in its journal "
             "manifest, or 30)")
    fleet_status.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the rendered view")
    fleet_status.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render every SECONDS until the run completes")
    fleet_status.set_defaults(fn=_cmd_fleet_status)

    profile = sub.add_parser(
        "profile", parents=[obs_flags],
        help="run another repro command under the sampling profiler "
             "and write folded stacks (flamegraph format)")
    profile.add_argument("--out", metavar="FILE",
                         default="profile.folded",
                         help="folded-stack output path "
                              "(default profile.folded)")
    profile.add_argument("--interval", type=float, default=0.005,
                         metavar="SECONDS",
                         help="seconds between stack samples "
                              "(default 0.005)")
    profile.add_argument("--top", type=int, default=10,
                         help="hottest self-time frames to print "
                              "(default 10)")
    profile.add_argument("wrapped", nargs=argparse.REMAINDER,
                         metavar="command",
                         help="the repro command to profile, with its "
                              "own flags (must come last)")
    profile.set_defaults(fn=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from .obs import MetricsRegistry, NullTracer, Tracer, set_registry, \
        set_tracer

    args = build_parser().parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    # A fresh registry per invocation keeps --metrics-out exports scoped
    # to this command (tests call main() many times in one process).
    set_registry(MetricsRegistry())
    tracer = Tracer(resources=args.trace_resources) \
        if args.trace_out else None
    if tracer is not None:
        set_tracer(tracer)
    resource_sampler = None
    if args.metrics_out:
        # A metrics export should say what the *process* did, not just
        # the instrumented code paths — sample CPU/RSS/GC alongside.
        from .obs.resources import ResourceSampler
        resource_sampler = ResourceSampler().start()
    try:
        return args.fn(args)
    except BrokenPipeError:
        # The stdout consumer (e.g. `repro telemetry t.jsonl | head`)
        # went away; silence the flush-at-exit error too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if resource_sampler is not None:
            resource_sampler.stop()
        if args.metrics_out:
            get_registry().export_jsonl(args.metrics_out)
            _log.info("metrics_exported", file=args.metrics_out)
        if tracer is not None:
            tracer.export_jsonl(args.trace_out)
            _log.info("trace_exported", file=args.trace_out,
                      spans=len(tracer.finished_spans()))
            set_tracer(NullTracer())


if __name__ == "__main__":
    sys.exit(main())
