"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — generate a calibrated corpus and save it to SQLite.
* ``report`` — run the full Section 3/4 analysis suite on a corpus.
* ``waste`` — train the Section 5 policy variants and print Table 3 /
  Figure 10 summaries.
* ``summarize`` — type-level summary of a pipeline's trace.
* ``telemetry`` — render a telemetry JSONL file produced by
  ``--metrics-out`` / ``--trace-out``.

Every command works on a corpus database produced by ``generate``, so a
full study is::

    python -m repro generate --pipelines 100 --out corpus.db
    python -m repro report corpus.db
    python -m repro waste corpus.db

Observability flags are global: ``--metrics-out t.jsonl`` exports the
metrics registry after the command, ``--trace-out spans.jsonl`` enables
span tracing and exports it, ``-v``/``-vv`` raise log verbosity and
``--quiet`` silences everything below errors::

    python -m repro generate --pipelines 20 --metrics-out t.jsonl
    python -m repro telemetry t.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .obs import configure_logging, get_logger, get_registry

_log = get_logger("cli")


def _cmd_generate(args: argparse.Namespace) -> int:
    from .corpus import CorpusConfig, generate_corpus
    from .mlmd import save_store

    config = CorpusConfig(n_pipelines=args.pipelines, seed=args.seed,
                          max_graphlets_per_pipeline=args.max_graphlets)
    print(f"generating {args.pipelines} pipelines (seed {args.seed}) ...")
    corpus = generate_corpus(config, progress=True)
    save_store(corpus.store, args.out)
    print(f"saved {corpus.store.num_executions:,} executions / "
          f"{corpus.store.num_artifacts:,} artifacts to {args.out}")
    return 0


def _load(path: str):
    from .corpus import Corpus
    from .mlmd import load_store

    return Corpus.from_store(load_store(path))


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import full_report, segment_production_pipelines
    from .reporting import bar_chart, format_table

    corpus = _load(args.corpus)
    print(f"{len(corpus.production_context_ids)} production pipelines")
    graphlets = segment_production_pipelines(corpus)
    report = full_report(corpus, graphlets)
    print(f"\nlifespan: mean {report['fig3a_lifespan'].mean:.1f} d, "
          f"max {report['fig3a_lifespan'].maximum:.1f} d")
    print(f"models/day: median "
          f"{report['fig3b_models_per_day'].median:.2f}, "
          f"mean {report['fig3b_models_per_day'].mean:.2f}")
    print("\nFigure 5 — model mix:")
    print(bar_chart(dict(sorted(report["fig5_model_mix"].items(),
                                key=lambda kv: -kv[1]))))
    print("\nFigure 7 — compute-cost shares:")
    print(bar_chart(dict(sorted(report["fig7_cost_breakdown"].items(),
                                key=lambda kv: -kv[1]))))
    print("\nTable 1 — consecutive-graphlet similarity:")
    rows = [(name, *[f"{v:.1%}" for v in row["buckets"].values()],
             f"{row['mean']:.3f}")
            for name, row in report["tab1_similarity"].items()]
    print(format_table(("metric", "[0,.25]", "(.25,.5]", "(.5,.75]",
                        "(.75,1]", "mean"), rows))
    print(f"\nunpushed graphlet fraction: "
          f"{report['unpushed_fraction']:.1%}")
    return 0


def _cmd_waste(args: argparse.Namespace) -> int:
    from .analysis import segment_production_pipelines
    from .reporting import format_table
    from .waste import (build_waste_dataset, evaluate_policies,
                        feature_cost_index, train_all_variants)

    corpus = _load(args.corpus)
    graphlets = segment_production_pipelines(corpus)
    dataset = build_waste_dataset(graphlets)
    if dataset.n_rows < 20:
        _log.error("corpus_too_small", n_rows=dataset.n_rows,
                   required=20, corpus=args.corpus,
                   hint="generate a larger corpus first")
        return 2
    print(f"{dataset.n_rows} graphlets, "
          f"{dataset.unpushed_fraction:.0%} unpushed")
    policies = train_all_variants(dataset, n_estimators=args.trees)
    evaluation = evaluate_policies(policies, feature_cost_index(dataset))
    rows = []
    for name, policy in policies.items():
        curve = evaluation.curves[name]
        rows.append((name,
                     f"{policy.balanced_accuracy:.3f}",
                     f"{evaluation.feature_cost.get(name, float('nan')):.3f}",
                     f"{curve.waste_cut_at_freshness(0.95):.3f}"))
    print(format_table(("model", "balanced acc", "feature cost",
                        "waste cut @F>=0.95"), rows))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from .mlmd import summarize_by_type

    corpus = _load(args.corpus)
    store = corpus.store
    context_id = None
    if args.pipeline is not None:
        matches = [c for c in store.get_contexts("Pipeline")
                   if c.name == args.pipeline]
        if not matches:
            print(f"no pipeline named {args.pipeline!r}", file=sys.stderr)
            return 1
        context_id = matches[0].id
    print(summarize_by_type(store, context_id).render())
    return 0


# ------------------------------------------------------------- telemetry


def _label_text(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _render_telemetry(records: list[dict]) -> str:
    """Render exported metrics/span records as tables and charts."""
    from .reporting import bar_chart, format_table

    counters = [r for r in records if r.get("kind") == "counter"]
    gauges = [r for r in records if r.get("kind") == "gauge"]
    histograms = [r for r in records if r.get("kind") == "histogram"]
    spans = [r for r in records if r.get("kind") == "span"]
    sections: list[str] = []

    if counters:
        rows = [(c["name"], _label_text(c["labels"]), f"{c['value']:,.0f}")
                for c in counters]
        sections.append(format_table(("counter", "labels", "value"), rows,
                                     title="Counters"))
        op_counts = {
            _label_text(c["labels"]) or c["name"]: c["value"]
            for c in counters if c["name"] == "mlmd.ops" and c["value"] > 0
        }
        if op_counts:
            sections.append(bar_chart(
                dict(sorted(op_counts.items(), key=lambda kv: -kv[1])),
                title="Store ops", value_format="{:,.0f}"))

    if gauges:
        rows = [(g["name"], _label_text(g["labels"]), f"{g['value']:.3f}")
                for g in gauges]
        sections.append(format_table(("gauge", "labels", "value"), rows,
                                     title="Gauges"))

    if histograms:
        rows = [
            (h["name"], _label_text(h["labels"]), h["count"],
             f"{h['mean']:.4g}", f"{h['p50']:.4g}", f"{h['p95']:.4g}",
             f"{h['p99']:.4g}", f"{h['sum']:.4g}")
            for h in histograms
        ]
        sections.append(format_table(
            ("histogram", "labels", "count", "mean", "p50", "p95", "p99",
             "sum"), rows, title="Histograms"))

    if spans:
        by_name: dict[str, list[float]] = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(
                float(record["duration"]))
        rows = []
        for name, durations in sorted(by_name.items(),
                                      key=lambda kv: -sum(kv[1])):
            ordered = sorted(durations)
            p50 = ordered[len(ordered) // 2]
            p95 = ordered[min(int(len(ordered) * 0.95),
                              len(ordered) - 1)]
            rows.append((name, len(durations), f"{sum(durations):.4g}",
                         f"{p50:.4g}", f"{p95:.4g}"))
        sections.append(format_table(
            ("span", "count", "total s", "p50 s", "p95 s"), rows,
            title="Spans"))

    if not sections:
        return "(no telemetry records)"
    return "\n\n".join(sections)


def _cmd_telemetry(args: argparse.Namespace) -> int:
    records = []
    bad_lines = 0
    try:
        with open(args.file) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    bad_lines += 1
    except OSError as exc:
        _log.error("telemetry_unreadable", file=args.file,
                   reason=type(exc).__name__)
        return 2
    if bad_lines:
        _log.warning("telemetry_bad_lines", file=args.file,
                     skipped=bad_lines)
    print(_render_telemetry(records))
    return 0


# ---------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="export the metrics registry as JSONL "
                            "after the command")
    group.add_argument("--trace-out", metavar="FILE", default=None,
                       help="enable span tracing and export spans "
                            "as JSONL")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="raise log verbosity (-v info, -vv debug)")
    group.add_argument("--quiet", action="store_true",
                       help="only log errors")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Production ML Pipelines' "
                    "(SIGMOD 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", parents=[obs_flags],
                              help="generate a corpus into SQLite")
    generate.add_argument("--pipelines", type=int, default=60)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--max-graphlets", type=int, default=60)
    generate.add_argument("--out", default="corpus.db")
    generate.set_defaults(fn=_cmd_generate)

    report = sub.add_parser("report", parents=[obs_flags],
                            help="run the Section 3/4 analysis suite")
    report.add_argument("corpus")
    report.set_defaults(fn=_cmd_report)

    waste = sub.add_parser("waste", parents=[obs_flags],
                           help="train the Section 5 policy variants")
    waste.add_argument("corpus")
    waste.add_argument("--trees", type=int, default=60)
    waste.set_defaults(fn=_cmd_waste)

    summarize = sub.add_parser("summarize", parents=[obs_flags],
                               help="type-level trace summary")
    summarize.add_argument("corpus")
    summarize.add_argument("--pipeline", default=None,
                           help="pipeline name (default: whole corpus)")
    summarize.set_defaults(fn=_cmd_summarize)

    telemetry = sub.add_parser("telemetry", parents=[obs_flags],
                               help="render an exported telemetry "
                                    "JSONL file")
    telemetry.add_argument("file")
    telemetry.set_defaults(fn=_cmd_telemetry)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from .obs import MetricsRegistry, NullTracer, Tracer, set_registry, \
        set_tracer

    args = build_parser().parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    # A fresh registry per invocation keeps --metrics-out exports scoped
    # to this command (tests call main() many times in one process).
    set_registry(MetricsRegistry())
    tracer = Tracer() if args.trace_out else None
    if tracer is not None:
        set_tracer(tracer)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # The stdout consumer (e.g. `repro telemetry t.jsonl | head`)
        # went away; silence the flush-at-exit error too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if args.metrics_out:
            get_registry().export_jsonl(args.metrics_out)
            _log.info("metrics_exported", file=args.metrics_out)
        if tracer is not None:
            tracer.export_jsonl(args.trace_out)
            _log.info("trace_exported", file=args.trace_out,
                      spans=len(tracer.finished_spans()))
            set_tracer(NullTracer())


if __name__ == "__main__":
    sys.exit(main())
