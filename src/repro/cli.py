"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — generate a calibrated corpus and save it to SQLite.
* ``report`` — run the full Section 3/4 analysis suite on a corpus.
* ``waste`` — train the Section 5 policy variants and print Table 3 /
  Figure 10 summaries.
* ``summarize`` — type-level summary of a pipeline's trace.

Every command works on a corpus database produced by ``generate``, so a
full study is::

    python -m repro generate --pipelines 100 --out corpus.db
    python -m repro report corpus.db
    python -m repro waste corpus.db
"""

from __future__ import annotations

import argparse
import sys


def _cmd_generate(args: argparse.Namespace) -> int:
    from .corpus import CorpusConfig, generate_corpus
    from .mlmd import save_store

    config = CorpusConfig(n_pipelines=args.pipelines, seed=args.seed,
                          max_graphlets_per_pipeline=args.max_graphlets)
    print(f"generating {args.pipelines} pipelines (seed {args.seed}) ...")
    corpus = generate_corpus(config, progress=True)
    save_store(corpus.store, args.out)
    print(f"saved {corpus.store.num_executions:,} executions / "
          f"{corpus.store.num_artifacts:,} artifacts to {args.out}")
    return 0


def _load(path: str):
    from .corpus import Corpus
    from .mlmd import load_store

    return Corpus.from_store(load_store(path))


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import full_report, segment_production_pipelines
    from .reporting import bar_chart, format_table

    corpus = _load(args.corpus)
    print(f"{len(corpus.production_context_ids)} production pipelines")
    graphlets = segment_production_pipelines(corpus)
    report = full_report(corpus, graphlets)
    print(f"\nlifespan: mean {report['fig3a_lifespan'].mean:.1f} d, "
          f"max {report['fig3a_lifespan'].maximum:.1f} d")
    print(f"models/day: median "
          f"{report['fig3b_models_per_day'].median:.2f}, "
          f"mean {report['fig3b_models_per_day'].mean:.2f}")
    print("\nFigure 5 — model mix:")
    print(bar_chart(dict(sorted(report["fig5_model_mix"].items(),
                                key=lambda kv: -kv[1]))))
    print("\nFigure 7 — compute-cost shares:")
    print(bar_chart(dict(sorted(report["fig7_cost_breakdown"].items(),
                                key=lambda kv: -kv[1]))))
    print("\nTable 1 — consecutive-graphlet similarity:")
    rows = [(name, *[f"{v:.1%}" for v in row["buckets"].values()],
             f"{row['mean']:.3f}")
            for name, row in report["tab1_similarity"].items()]
    print(format_table(("metric", "[0,.25]", "(.25,.5]", "(.5,.75]",
                        "(.75,1]", "mean"), rows))
    print(f"\nunpushed graphlet fraction: "
          f"{report['unpushed_fraction']:.1%}")
    return 0


def _cmd_waste(args: argparse.Namespace) -> int:
    from .analysis import segment_production_pipelines
    from .reporting import format_table
    from .waste import (build_waste_dataset, evaluate_policies,
                        feature_cost_index, train_all_variants)

    corpus = _load(args.corpus)
    graphlets = segment_production_pipelines(corpus)
    dataset = build_waste_dataset(graphlets)
    if dataset.n_rows < 20:
        print(f"only {dataset.n_rows} graphlets after the warm-start "
              "filter — generate a larger corpus first", file=sys.stderr)
        return 1
    print(f"{dataset.n_rows} graphlets, "
          f"{dataset.unpushed_fraction:.0%} unpushed")
    policies = train_all_variants(dataset, n_estimators=args.trees)
    evaluation = evaluate_policies(policies, feature_cost_index(dataset))
    rows = []
    for name, policy in policies.items():
        curve = evaluation.curves[name]
        rows.append((name, policy.balanced_accuracy,
                     evaluation.feature_cost.get(name, float("nan")),
                     curve.waste_cut_at_freshness(0.95)))
    print(format_table(("model", "balanced acc", "feature cost",
                        "waste cut @F>=0.95"), rows))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from .mlmd import summarize_by_type

    corpus = _load(args.corpus)
    store = corpus.store
    context_id = None
    if args.pipeline is not None:
        matches = [c for c in store.get_contexts("Pipeline")
                   if c.name == args.pipeline]
        if not matches:
            print(f"no pipeline named {args.pipeline!r}", file=sys.stderr)
            return 1
        context_id = matches[0].id
    print(summarize_by_type(store, context_id).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Production ML Pipelines' "
                    "(SIGMOD 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate a corpus into SQLite")
    generate.add_argument("--pipelines", type=int, default=60)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--max-graphlets", type=int, default=60)
    generate.add_argument("--out", default="corpus.db")
    generate.set_defaults(fn=_cmd_generate)

    report = sub.add_parser("report",
                            help="run the Section 3/4 analysis suite")
    report.add_argument("corpus")
    report.set_defaults(fn=_cmd_report)

    waste = sub.add_parser("waste",
                           help="train the Section 5 policy variants")
    waste.add_argument("corpus")
    waste.add_argument("--trees", type=int, default=60)
    waste.set_defaults(fn=_cmd_waste)

    summarize = sub.add_parser("summarize",
                               help="type-level trace summary")
    summarize.add_argument("corpus")
    summarize.add_argument("--pipeline", default=None,
                           help="pipeline name (default: whole corpus)")
    summarize.set_defaults(fn=_cmd_summarize)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
