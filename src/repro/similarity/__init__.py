"""Input-data similarity metrics (Appendix B) and their substrates."""

from .feature_metric import (
    ALPHA,
    BETA,
    FeatureDigest,
    SpanDigest,
    digest_span,
    feature_similarity,
    span_similarity,
    span_similarity_exact,
)
from .lsh import DEFAULT_HASHER, S2JSDHasher, s2jsd
from .span_metric import (
    SpanPairCache,
    bipartite_similarity,
    jaccard_similarity,
    sequence_similarity,
)

__all__ = [
    "ALPHA",
    "BETA",
    "DEFAULT_HASHER",
    "FeatureDigest",
    "S2JSDHasher",
    "SpanPairCache",
    "SpanDigest",
    "bipartite_similarity",
    "digest_span",
    "feature_similarity",
    "jaccard_similarity",
    "s2jsd",
    "sequence_similarity",
    "span_similarity",
    "span_similarity_exact",
]
