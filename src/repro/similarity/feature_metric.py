"""Feature- and span-level similarity (Appendix B, Eq. 2 and the EMD).

A *span digest* is the privacy-preserving view the similarity metric
needs: per-feature (name, type, LSH hash of the standardized
distribution). Feature similarity is

    s(f1, f2) = alpha * 1[h(f1) = h(f2)] + beta * 1[name1 = name2]

restricted to features of the same type. Span similarity S(D1, D2) is an
Earth Mover's Distance-style optimal transport where features are
equal-weight clusters and the ground "distance" is the feature
similarity (the transport *maximizes* total similarity). The metric is
symmetric, lands in [0, 1], S(D, D) = 1, and S(empty, D) = 0.

Two solvers are provided: an exact LP (scipy linprog) and a tiered greedy
matcher exploiting the fact that s takes only four values; they agree on
the structured instances that arise here (names are unique within a
span), which the test-suite and an ablation bench check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from ..data.schema import FeatureType
from ..data.statistics import SpanStatistics
from .lsh import DEFAULT_HASHER, S2JSDHasher

#: Weight on distribution-hash equality in Eq. 2. The paper leaves the
#: weights unspecified; with per-span anonymized feature names the name
#: indicator fires only for literally shared span artifacts, so BETA
#: carries the "same data" signal and ALPHA the graded content signal.
#: This split lands Table 1's dataset-similarity row near its targets.
ALPHA = 0.15
#: Weight on feature-name equality in Eq. 2.
BETA = 0.85


@dataclass(frozen=True)
class FeatureDigest:
    """Digest of one feature: name, kind, and distribution hash."""

    name: str
    is_categorical: bool
    dist_hash: int


@dataclass
class SpanDigest:
    """Digest of one span: its feature digests, hashable and comparable.

    This is what the corpus records on DataSpan artifacts — it is
    sufficient for the Appendix-B metric and orders of magnitude smaller
    than the statistics themselves.
    """

    features: list[FeatureDigest] = field(default_factory=list)

    @property
    def feature_count(self) -> int:
        """Number of features in the digest."""
        return len(self.features)

    def to_properties(self) -> dict:
        """Flatten to MLMD-compatible list properties."""
        return {
            "digest_names": [f.name for f in self.features],
            "digest_categorical": [f.is_categorical for f in self.features],
            "digest_hashes": [f.dist_hash for f in self.features],
        }

    @classmethod
    def from_properties(cls, properties: dict) -> "SpanDigest":
        """Rebuild a digest from artifact properties."""
        names = properties.get("digest_names", [])
        cats = properties.get("digest_categorical", [])
        hashes = properties.get("digest_hashes", [])
        return cls(features=[
            FeatureDigest(name=n, is_categorical=bool(c), dist_hash=int(h))
            for n, c, h in zip(names, cats, hashes)
        ])


def digest_span(statistics: SpanStatistics,
                hasher: S2JSDHasher = DEFAULT_HASHER) -> SpanDigest:
    """Digest a span's summary statistics (hashing vectorized)."""
    names: list[str] = []
    cats: list[bool] = []
    rows: list[np.ndarray] = []
    for name, stats in statistics.features.items():
        names.append(name)
        cats.append(stats.type is FeatureType.CATEGORICAL)
        rows.append(stats.distribution())
    if not rows:
        return SpanDigest(features=[])
    hashes = hasher.hash_many(np.vstack(rows))
    return SpanDigest(features=[
        FeatureDigest(name=name, is_categorical=cat, dist_hash=int(h))
        for name, cat, h in zip(names, cats, hashes)
    ])


def feature_similarity(f1: FeatureDigest, f2: FeatureDigest,
                       alpha: float = ALPHA, beta: float = BETA) -> float:
    """Eq. 2: weighted indicators of hash and name equality.

    Similarity between a numerical and a categorical feature is 0.
    """
    if f1.is_categorical != f2.is_categorical:
        return 0.0
    score = 0.0
    if f1.dist_hash == f2.dist_hash:
        score += alpha
    if f1.name == f2.name:
        score += beta
    return score


def _similarity_matrix(d1: SpanDigest, d2: SpanDigest, alpha: float,
                       beta: float) -> np.ndarray:
    n, m = d1.feature_count, d2.feature_count
    matrix = np.zeros((n, m))
    for i, f1 in enumerate(d1.features):
        for j, f2 in enumerate(d2.features):
            matrix[i, j] = feature_similarity(f1, f2, alpha, beta)
    return matrix


def span_similarity_exact(d1: SpanDigest, d2: SpanDigest,
                          alpha: float = ALPHA,
                          beta: float = BETA) -> float:
    """Exact EMD-style span similarity via the transportation LP.

    Maximize sum(flow * similarity) with uniform supplies 1/n and demands
    1/m. O(n*m) variables — use only for modest feature counts; the
    greedy solver below is the production path.
    """
    n, m = d1.feature_count, d2.feature_count
    if n == 0 or m == 0:
        return 0.0
    sim = _similarity_matrix(d1, d2, alpha, beta)
    c = -sim.reshape(-1)  # linprog minimizes.
    a_eq = np.zeros((n + m, n * m))
    b_eq = np.concatenate([np.full(n, 1.0 / n), np.full(m, 1.0 / m)])
    for i in range(n):
        a_eq[i, i * m:(i + 1) * m] = 1.0
    for j in range(m):
        a_eq[n + j, j::m] = 1.0
    # Total supply must equal total demand for equality constraints; both
    # sum to 1 by construction.
    result = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=(0, None),
                     method="highs")
    if not result.success:
        raise RuntimeError(f"transportation LP failed: {result.message}")
    return float(min(max(-result.fun, 0.0), 1.0))


def span_similarity(d1: SpanDigest, d2: SpanDigest, alpha: float = ALPHA,
                    beta: float = BETA) -> float:
    """Fast tiered transport solving the same problem as the exact LP.

    Exploits the 4-valued similarity: route mass through pairs in
    descending similarity tier. Names are unique within a span, so
    name-tier matches form a partial matching; hash-tier matches are
    resolved greedily within hash buckets. On the instances arising from
    span digests this matches the LP optimum (tested); in adversarial
    generals it is a lower bound.
    """
    n, m = d1.feature_count, d2.feature_count
    if n == 0 or m == 0:
        return 0.0
    supply = np.full(n, 1.0 / n)
    demand = np.full(m, 1.0 / m)
    total = 0.0

    name_to_j = {f.name: j for j, f in enumerate(d2.features)}

    def _route(i: int, j: int, tier_value: float) -> float:
        amount = min(supply[i], demand[j])
        if amount <= 0:
            return 0.0
        supply[i] -= amount
        demand[j] -= amount
        return amount * tier_value

    # Tier 1: name + hash match (alpha + beta).
    pending_name_only: list[tuple[int, int]] = []
    for i, f1 in enumerate(d1.features):
        j = name_to_j.get(f1.name)
        if j is None:
            continue
        f2 = d2.features[j]
        if f1.is_categorical != f2.is_categorical:
            continue
        if f1.dist_hash == f2.dist_hash:
            total += _route(i, j, alpha + beta)
        else:
            pending_name_only.append((i, j))
    # Tier 2: the larger of the single-indicator tiers first.
    first_tier, second_tier = ((beta, "name"), (alpha, "hash"))
    if alpha > beta:
        first_tier, second_tier = (alpha, "hash"), (beta, "name")
    for value, kind in (first_tier, second_tier):
        if value <= 0:
            continue
        if kind == "name":
            for i, j in pending_name_only:
                total += _route(i, j, value)
        else:
            buckets: dict[tuple[int, bool], list[int]] = {}
            for j, f2 in enumerate(d2.features):
                buckets.setdefault((f2.dist_hash, f2.is_categorical),
                                   []).append(j)
            for i, f1 in enumerate(d1.features):
                if supply[i] <= 0:
                    continue
                for j in buckets.get((f1.dist_hash, f1.is_categorical), ()):
                    if f1.name == d2.features[j].name:
                        continue  # Already handled at tier 1/name tier.
                    if supply[i] <= 0:
                        break
                    total += _route(i, j, value)
    # Clamp away float-summation overshoot; the metric is in [0, 1].
    return float(min(max(total, 0.0), 1.0))
