"""S2JSD-LSH: locality-sensitive hashing for probability distributions.

Appendix B compares features by hashing their standardized probability
distributions with the S2JSD-LSH scheme of Mao et al. (AAAI 2017), which
is locality-sensitive for the S2JSD metric (square root of twice the
Jensen-Shannon divergence). The hash family is

    h(P) = floor((a · sqrt(P) + b) / w)

where ``a`` is a random Gaussian vector, ``sqrt`` is element-wise, ``b``
is uniform on [0, w), and ``w`` is the bucket width: the element-wise
square root embeds distributions on the unit sphere where Euclidean
distance approximates S2JSD, and the outer form is the classic p-stable
Euclidean LSH.

Distributions with small S2JSD land in the same bucket with high
probability; the feature similarity metric uses hash equality as its
distribution-match indicator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def s2jsd(p: np.ndarray, q: np.ndarray) -> float:
    """The S2JSD metric: sqrt(2 * Jensen-Shannon divergence).

    Both inputs must be probability vectors of equal length. JSD is
    computed with natural log; zero bins contribute zero mass.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log(a[mask] / b[mask])))

    jsd = 0.5 * _kl(p, m) + 0.5 * _kl(q, m)
    return float(np.sqrt(max(2.0 * jsd, 0.0)))


@dataclass
class S2JSDHasher:
    """One hash function from the S2JSD-LSH family.

    Attributes:
        dim: Distribution length (number of bins); fixed per hasher.
        width: Bucket width ``w`` — smaller is stricter. The default is
            tuned so consecutive spans of a slowly drifting source
            collide part of the time (a graded drift signal) while
            clearly drifted distributions do not.
        seed: Seed deriving the random projection; two hashers with the
            same (dim, width, seed) are identical, which is what lets
            span digests computed at generation time be compared at
            analysis time.
    """

    dim: int = 10
    width: float = 0.04
    seed: int = 7

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")
        rng = np.random.default_rng(self.seed)
        self._a = rng.normal(size=self.dim)
        self._b = float(rng.uniform(0.0, self.width))

    def hash(self, distribution: np.ndarray) -> int:
        """Hash one probability distribution to an integer bucket."""
        p = np.asarray(distribution, dtype=float)
        if p.shape != (self.dim,):
            raise ValueError(
                f"expected distribution of length {self.dim}, got {p.shape}")
        total = p.sum()
        if total <= 0:
            p = np.full(self.dim, 1.0 / self.dim)
        else:
            p = p / total
        projection = float(self._a @ np.sqrt(p))
        return int(np.floor((projection + self._b) / self.width))

    def hash_many(self, distributions: np.ndarray) -> np.ndarray:
        """Vectorized hashing of a (n, dim) matrix of distributions."""
        mat = np.asarray(distributions, dtype=float)
        if mat.ndim != 2 or mat.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) matrix")
        totals = mat.sum(axis=1, keepdims=True)
        safe = np.where(totals > 0, mat / np.where(totals > 0, totals, 1.0),
                        1.0 / self.dim)
        projections = np.sqrt(safe) @ self._a
        return np.floor((projections + self._b) / self.width).astype(int)


#: The default hasher shared by span digests and the similarity metric.
DEFAULT_HASHER = S2JSDHasher()
