"""Sequence- and set-level input-data similarity (Appendix B, Eq. 3).

Graphlets consume *sequences* of data spans (ordered by ingestion time).
The paper's dataset-similarity metric aligns two sequences by ordinal
position and normalizes by the longer length:

    S(D, D') = (1 / max(n, m)) * sum_{i=1..min(n,m)} S(D_i, D'_i)

Ordinal matching (rather than identity matching) is deliberate: it models
training algorithms that visit spans sequentially, and it is why Table 1
row 2 reverses the bimodality of the Jaccard row. For workloads where
order is irrelevant we also provide the maximum-bipartite-matching
variant the paper mentions as the alternative; the ablation bench
compares the two.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from .feature_metric import ALPHA, BETA, SpanDigest, span_similarity


def jaccard_similarity(spans_a: set, spans_b: set) -> float:
    """Span-identity reuse: |A ∩ B| / |A ∪ B| (Section 4.2.1).

    Defined as 0 when both sets are empty.
    """
    if not spans_a and not spans_b:
        return 0.0
    union = len(spans_a | spans_b)
    return len(spans_a & spans_b) / union


def sequence_similarity(seq_a: Sequence[SpanDigest],
                        seq_b: Sequence[SpanDigest],
                        alpha: float = ALPHA,
                        beta: float = BETA) -> float:
    """Eq. 3: ordinal-position alignment, normalized by the longer side."""
    if not seq_a or not seq_b:
        return 0.0
    n, m = len(seq_a), len(seq_b)
    total = sum(
        span_similarity(a, b, alpha, beta)
        for a, b in zip(seq_a, seq_b)
    )
    return min(total / max(n, m), 1.0)


class SpanPairCache:
    """Memoizes span-pair similarities by artifact-id pair.

    Rolling windows make consecutive graphlets compare mostly the same
    span pairs (shifted by one position); memoizing by the spans'
    artifact ids turns the corpus-wide Table-1 computation from
    O(pairs × window) span comparisons into roughly O(distinct adjacent
    span pairs).
    """

    def __init__(self, alpha: float = ALPHA, beta: float = BETA) -> None:
        self._alpha = alpha
        self._beta = beta
        self._cache: dict[tuple[int, int], float] = {}

    def span_pair(self, id_a: int, digest_a: SpanDigest, id_b: int,
                  digest_b: SpanDigest) -> float:
        """Cached span-to-span similarity."""
        if id_a == id_b:
            return 1.0 if digest_a.feature_count else 0.0
        key = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        value = self._cache.get(key)
        if value is None:
            value = span_similarity(digest_a, digest_b, self._alpha,
                                    self._beta)
            self._cache[key] = value
        return value

    def sequence_similarity(self, ids_a: Sequence[int],
                            seq_a: Sequence[SpanDigest],
                            ids_b: Sequence[int],
                            seq_b: Sequence[SpanDigest]) -> float:
        """Eq. 3 with cached pairwise terms."""
        if not seq_a or not seq_b:
            return 0.0
        total = sum(
            self.span_pair(ia, a, ib, b)
            for ia, a, ib, b in zip(ids_a, seq_a, ids_b, seq_b)
        )
        return min(total / max(len(seq_a), len(seq_b)), 1.0)

    @property
    def size(self) -> int:
        """Number of memoized span pairs."""
        return len(self._cache)


def bipartite_similarity(seq_a: Sequence[SpanDigest],
                         seq_b: Sequence[SpanDigest],
                         alpha: float = ALPHA,
                         beta: float = BETA) -> float:
    """Order-free alternative: maximum-weight bipartite matching.

    Pairs spans to maximize total span-to-span similarity regardless of
    position, normalized by the longer sequence. Always >= the ordinal
    metric (any ordinal alignment is one feasible matching).
    """
    if not seq_a or not seq_b:
        return 0.0
    n, m = len(seq_a), len(seq_b)
    weights = np.zeros((n, m))
    for i, a in enumerate(seq_a):
        for j, b in enumerate(seq_b):
            weights[i, j] = span_similarity(a, b, alpha, beta)
    rows, cols = linear_sum_assignment(-weights)
    return min(float(weights[rows, cols].sum()) / max(n, m), 1.0)
