"""Waste mitigation: train the Section 5 predict-and-skip policy.

Builds the supervised dataset from a synthetic corpus's graphlets, trains
the paper's four staged Random Forest variants plus the hand-crafted
heuristics, sweeps the decision threshold, and prints the freshness vs
wasted-computation tradeoff (Figure 10) — the paper's headline being that
~50% of wasted computation is recoverable without hurting freshness.

Run:  python examples/waste_mitigation.py [n_pipelines]
(default 80 pipelines, ~2 min)
"""

import sys

import numpy as np

from repro.analysis import segment_production_pipelines
from repro.corpus import CorpusConfig, calibration, generate_corpus
from repro.reporting import curve, format_table
from repro.waste import (
    WasteSplit,
    build_waste_dataset,
    evaluate_policies,
    feature_cost_index,
    run_all_heuristics,
    train_all_variants,
)


def main() -> None:
    n_pipelines = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    config = CorpusConfig(n_pipelines=n_pipelines, seed=7,
                          max_graphlets_per_pipeline=60)
    print(f"Generating corpus of {n_pipelines} pipelines ...")
    corpus = generate_corpus(config)
    graphlets = segment_production_pipelines(corpus)

    print("Building the waste-mitigation dataset "
          "(non-warmstart pipelines only) ...")
    dataset = build_waste_dataset(graphlets)
    print(f"{dataset.n_rows:,} graphlets, "
          f"{dataset.unpushed_fraction:.0%} unpushed "
          f"(paper: {calibration.PAPER_WASTE_UNPUSHED_FRACTION:.0%})\n")

    print("--- Section 5.1: hand-crafted heuristics ---")
    split = WasteSplit.make(dataset, np.random.default_rng(0))
    heuristic_rows = [(h.name, h.balanced_accuracy, h.description)
                      for h in run_all_heuristics(dataset, split)]
    print(format_table(("heuristic", "balanced acc", "rule"),
                       heuristic_rows))

    print("\n--- Table 3: staged Random Forest variants ---")
    policies = train_all_variants(dataset, n_estimators=60)
    costs = feature_cost_index(dataset)
    rows = [
        (name, calibration.PAPER_BALANCED_ACC[name],
         policy.balanced_accuracy, costs.get(name, float("nan")))
        for name, policy in policies.items()
    ]
    print(format_table(("model", "paper acc", "acc", "feature cost"),
                       rows))

    print("\n--- Figure 10(a): freshness vs wasted computation ---")
    evaluation = evaluate_policies(policies, costs)
    tradeoff_rows = []
    for name, tradeoff in evaluation.curves.items():
        tradeoff_rows.append((
            name,
            f"{tradeoff.waste_cut_at_freshness(1.0):.0%}",
            f"{tradeoff.waste_cut_at_freshness(0.95):.0%}",
            f"{tradeoff.waste_cut_at_freshness(0.8):.0%}",
        ))
    print(format_table(("model", "waste cut @F=1.0", "@F>=0.95",
                        "@F>=0.8"), tradeoff_rows))
    best = evaluation.curves["RF:Validation"]
    print()
    print(curve(best.points(), title="RF:Validation tradeoff curve",
                x_label="wasted computation remaining",
                y_label="model freshness"))

    saved = best.waste_cut_at_freshness(0.95)
    print(f"\nWith the strongest variant, {saved:.0%} of wasted "
          "computation is recoverable at >= 95% model freshness "
          f"(paper: {calibration.PAPER_WASTE_CUT_AT_FULL_FRESHNESS:.0%} "
          "at full freshness).")


if __name__ == "__main__":
    main()
