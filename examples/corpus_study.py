"""Corpus study: regenerate the paper's empirical analysis end to end.

Generates a calibrated synthetic corpus (the stand-in for the paper's
3000 Google pipelines — see DESIGN.md for the substitution), runs every
Section 3 and Section 4 analysis, and prints the results side by side
with the paper's reported numbers.

Run:  python examples/corpus_study.py [n_pipelines]
(default 60 pipelines, ~30 s; the benches use 150)
"""

import sys

import numpy as np

from repro.analysis import full_report, segment_production_pipelines
from repro.corpus import CorpusConfig, calibration, generate_corpus
from repro.reporting import bar_chart, format_table, paper_vs_measured


def main() -> None:
    n_pipelines = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    config = CorpusConfig(n_pipelines=n_pipelines, seed=7,
                          max_graphlets_per_pipeline=60)
    print(f"Generating corpus of {n_pipelines} pipelines ...")
    corpus = generate_corpus(config, progress=True)
    store = corpus.store
    print(f"trace: {store.num_executions:,} executions, "
          f"{store.num_artifacts:,} artifacts, "
          f"{store.num_events:,} events; "
          f"{len(corpus.production_records)} production pipelines")

    print("Segmenting into model graphlets ...")
    graphlets = segment_production_pipelines(corpus)
    n_graphlets = sum(len(g) for g in graphlets.values())
    print(f"{n_graphlets:,} graphlets "
          f"(paper: {calibration.PAPER_N_MODELS:,} at full scale)\n")

    report = full_report(corpus, graphlets)

    print("--- Section 3.1: lifespan and activity ---")
    print(paper_vs_measured([
        ("mean lifespan (days)", calibration.PAPER_MEAN_LIFESPAN_DAYS,
         report["fig3a_lifespan"].mean),
        ("mean models/day", calibration.PAPER_MEAN_MODELS_PER_DAY,
         report["fig3b_models_per_day"].mean),
    ]))

    print("\n--- Section 3.2: data complexity ---")
    profile = report["fig3f_feature_profile"]
    print(paper_vs_measured([
        ("categorical feature fraction",
         calibration.PAPER_CATEGORICAL_FEATURE_FRACTION,
         profile["categorical_fraction_mean"]),
        ("mean categorical domain",
         calibration.PAPER_MEAN_CATEGORICAL_DOMAIN,
         profile["mean_domain_size"]),
    ]))

    print("\n--- Figure 4: analyzer usage (share of invocations) ---")
    print(bar_chart(dict(sorted(
        report["fig4_analyzer_usage"]["usage"].items(),
        key=lambda kv: -kv[1]))))

    print("\n--- Figure 5: model mix ---")
    print(bar_chart(dict(sorted(report["fig5_model_mix"].items(),
                                key=lambda kv: -kv[1]))))

    print("\n--- Figure 7: compute-cost shares ---")
    print(bar_chart(dict(sorted(report["fig7_cost_breakdown"].items(),
                                key=lambda kv: -kv[1]))))

    print("\n--- Table 1: consecutive-graphlet similarity ---")
    rows = []
    for name, row in report["tab1_similarity"].items():
        rows.append((name,
                     *[f"{v:.1%}" for v in row["buckets"].values()],
                     f"{row['mean']:.3f}"))
    print(format_table(("metric", "[0,.25]", "(.25,.5]", "(.5,.75]",
                        "(.75,1]", "mean"), rows))

    print("\n--- Section 4.3: retraining vs deployment ---")
    print(paper_vs_measured([
        ("unpushed graphlet fraction",
         calibration.PAPER_UNPUSHED_FRACTION,
         report["unpushed_fraction"]),
        ("mean graphlets between pushes",
         calibration.PAPER_MEAN_GRAPHLETS_BETWEEN_PUSHES,
         report["fig9c_between_pushes"].mean),
        ("mean graphlet duration (h)",
         calibration.PAPER_MEAN_GRAPHLET_DURATION_HOURS,
         report["fig9e_durations"].mean),
    ]))

    print("\n--- Figure 9(f): push likelihood by model type ---")
    known = {k: v for k, v in report["fig9f_push_by_type"].items()
             if k != "unknown"}
    print(bar_chart(dict(sorted(known.items(), key=lambda kv: -kv[1]))))

    print("\n--- Table 2: push vs drift / code change ---")
    table2 = report["tab2_push_vs_drift"]
    print(format_table(("metric", "mu_pushed", "mu_unpushed", "mu"), [
        (metric, values["pushed"], values["unpushed"], values["all"])
        for metric, values in table2.items()
    ]))


if __name__ == "__main__":
    main()
