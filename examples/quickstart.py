"""Quickstart: author a TFX-style pipeline, run it on real data, inspect
the trace, and segment it into model graphlets.

This walks the paper's core loop end to end on the *real-execution* path
(materialized data, actual model training) — no simulation shortcuts:

1. author the Figure 1(b) pipeline topology;
2. feed it daily data spans and trigger training runs;
3. watch data validation block a bad span;
4. segment the recorded trace into model graphlets (Section 4.1);
5. print per-graphlet costs and push outcomes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import materialize_span, random_schema
from repro.graphlets import graphlet_shape, segment_pipeline
from repro.mlmd import MetadataStore
from repro.reporting import format_table, render_graphlet, render_trace
from repro.tfx import (
    ExampleGen,
    ExampleValidator,
    Evaluator,
    ModelType,
    ModelValidator,
    NodeInput,
    PipelineDef,
    PipelineNode,
    PipelineRunner,
    Pusher,
    SchemaGen,
    StatisticsGen,
    Trainer,
)


def build_pipeline() -> PipelineDef:
    """The 'typical' pipeline of Figure 1(b), on a 3-span rolling window."""
    return PipelineDef("quickstart", [
        PipelineNode("gen", ExampleGen(), stage="ingest"),
        PipelineNode("stats", StatisticsGen(),
                     inputs={"spans": NodeInput("gen", "span")},
                     stage="ingest"),
        PipelineNode("schema", SchemaGen(),
                     inputs={"statistics": NodeInput("stats",
                                                     "statistics")},
                     stage="ingest"),
        PipelineNode("validator", ExampleValidator(),
                     inputs={"statistics": NodeInput("stats",
                                                     "statistics"),
                             "schema": NodeInput("schema", "schema")},
                     stage="ingest"),
        PipelineNode("trainer", Trainer(model_type=ModelType.TREES),
                     inputs={"spans": NodeInput("gen", "span", window=3)},
                     gates=["validator"]),
        PipelineNode("evaluator", Evaluator(),
                     inputs={"model": NodeInput("trainer", "model"),
                             "spans": NodeInput("gen", "span")}),
        PipelineNode("mvalidator", ModelValidator(),
                     inputs={"evaluation": NodeInput("evaluator",
                                                     "evaluation"),
                             "model": NodeInput("trainer", "model")}),
        PipelineNode("pusher", Pusher(),
                     inputs={"model": NodeInput("trainer", "model"),
                             "blessing": NodeInput("mvalidator",
                                                   "blessing")},
                     gates=["mvalidator"]),
    ])


def main() -> None:
    rng = np.random.default_rng(0)
    store = MetadataStore()
    runner = PipelineRunner(build_pipeline(), store, rng,
                            simulation=False)
    schema = random_schema(rng, n_features=8, categorical_fraction=0.3)

    print("=== Running 6 daily triggers (training every 2nd span) ===")
    for day in range(6):
        day_schema = schema
        if day == 3:
            # Corrupt day 3 at the source: a numeric feature's scale
            # explodes upstream — data validation catches it and blocks
            # that day's training trigger.
            from copy import deepcopy
            day_schema = deepcopy(schema)
            for spec in day_schema:
                if spec.numeric is not None:
                    spec.numeric.mean *= 1e6
                    spec.numeric.stddev *= 1e6
                    break
        span = materialize_span(day_schema, day, 600, rng,
                                ingest_time=day * 24.0)
        kind = "train" if day % 2 == 1 else "ingest"
        report = runner.run(day * 24.0, kind=kind,
                            hints={"new_span": span})
        interesting = {node: status
                       for node, status in report.node_status.items()
                       if status not in ("not_in_stage",)}
        print(f"day {day} ({kind:6s}): {interesting} "
              f"pushed={report.pushed}")

    print(f"\ntrace: {store.num_executions} executions, "
          f"{store.num_artifacts} artifacts, {store.num_events} events")

    print("\n=== Model graphlets (Section 4.1 segmentation) ===")
    graphlets = segment_pipeline(store, runner.context_id)
    rows = []
    for index, graphlet in enumerate(graphlets):
        shape = graphlet_shape(graphlet)
        ops = ", ".join(f"{name}x{s.count}"
                        for name, s in sorted(shape.by_operator.items()))
        rows.append((index, graphlet.model_type, graphlet.pushed,
                     round(graphlet.total_cpu_hours, 1),
                     round(graphlet.duration_hours, 1), ops))
    print(format_table(("#", "model", "pushed", "cpu-h", "dur-h",
                        "operators"), rows))

    print("\n=== Figure-2-style temporal view of the trace ===")
    print(render_trace(store, runner.context_id, max_nodes=14))

    print("\n=== Figure-8-style view of the first graphlet ===")
    print(render_graphlet(graphlets[0]))

    print("\nDone. Each graphlet is one end-to-end logical pipeline run "
          "around a single Trainer execution;\nthe day-3 anomaly blocked "
          "that day's training trigger entirely (no graphlet for it).")


if __name__ == "__main__":
    main()
