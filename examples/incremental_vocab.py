"""Incremental view maintenance for vocabulary analysis.

One of the paper's concrete optimization opportunities (Sections 3.2 and
4.2.1): consecutive graphlets share ~65% of their input spans (Table 1's
Jaccard row), yet the dominant analyzer — the top-K vocabulary over
categorical features (Figure 4) — is recomputed from scratch for every
training run. This example maintains the vocabulary incrementally over a
rolling window and shows (a) identical results and (b) how much less
data each refresh touches.

Run:  python examples/incremental_vocab.py
"""

import time

import numpy as np

from repro.data import (
    IncrementalVocabularyAnalyzer,
    VocabularyAnalyzer,
    materialize_span,
)
from repro.data.schema import (
    CategoricalDomain,
    FeatureSpec,
    FeatureType,
    Schema,
)
from repro.reporting import format_table

WINDOW = 24
STEPS = 20
EXAMPLES_PER_SPAN = 30_000


def main() -> None:
    rng = np.random.default_rng(5)
    schema = Schema(features=[FeatureSpec(
        name="query_tokens", type=FeatureType.CATEGORICAL,
        categorical=CategoricalDomain(unique_values=25_000, zipf_s=1.1))])
    print(f"Materializing {WINDOW + STEPS} daily spans of "
          f"{EXAMPLES_PER_SPAN:,} examples ...")
    spans = [materialize_span(schema, i, EXAMPLES_PER_SPAN, rng)
             for i in range(WINDOW + STEPS)]

    print(f"Sliding a {WINDOW}-span window through {STEPS} training "
          "triggers ...\n")
    start = time.perf_counter()
    batch_results = []
    for step in range(STEPS):
        window = spans[step:step + WINDOW]
        analyzer = VocabularyAnalyzer("query_tokens", top_k=500)
        batch_results.append(analyzer.analyze(window).value)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    incremental = IncrementalVocabularyAnalyzer("query_tokens", top_k=500)
    touched = 0
    incremental_results = []
    for step in range(STEPS):
        touched += incremental.advance_to(spans[step:step + WINDOW])
        incremental_results.append(incremental.vocabulary())
    incremental_seconds = time.perf_counter() - start

    identical = all(a == b for a, b in zip(batch_results,
                                           incremental_results))
    print(format_table(
        ("strategy", "seconds", "spans scanned", "examples scanned"), [
            ("full recomputation", round(batch_seconds, 3),
             STEPS * WINDOW, STEPS * WINDOW * EXAMPLES_PER_SPAN),
            ("incremental maintenance", round(incremental_seconds, 3),
             touched, touched * EXAMPLES_PER_SPAN),
        ]))
    print(f"\nvocabularies identical across all steps: {identical}")
    print(f"data touched: {STEPS * WINDOW / max(touched, 1):.1f}x less; "
          f"wall clock: "
          f"{batch_seconds / max(incremental_seconds, 1e-9):.1f}x faster")
    print("\n(The data reduction is the durable win: in production the "
          "spans live in distributed storage,\nso every span re-scanned "
          "is I/O + shuffle cost, not just CPU.)")


if __name__ == "__main__":
    main()
