"""Setup shim so legacy tooling (and offline environments without the
`wheel` package) can install the project; configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
